#ifndef TCQ_CORE_RUNNER_H_
#define TCQ_CORE_RUNNER_H_

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/analyzer.h"
#include "eddy/eddy.h"
#include "eddy/operators.h"
#include "ingress/wrapper.h"

namespace tcq {

/// One evaluation of the query over one window: the paper's output model
/// is "a sequence of sets, each set associated with an instant in time"
/// (§4.1.1).
struct ResultSet {
  Timestamp t = 0;  ///< The for-loop variable's value for this window.
  TupleVector rows;
};

/// CEDR-style per-query consistency level over a disordered feed
/// (DESIGN.md §15).
enum class Consistency : uint8_t {
  /// Delayed-but-correct: results are held until the safe (released)
  /// watermark passes the window close, so every delivery is final —
  /// byte-identical to replaying the feed in timestamp order.
  kDelayed = 0,
  /// Speculative: results are emitted the moment the raw watermark allows,
  /// and a late arrival that changes an already-delivered window triggers
  /// a revision — retraction-signed rows canceling the stale results plus
  /// fresh assertions. Converges to the delayed answer.
  kSpeculative = 1,
};

/// Executes one analyzed query as a continuous, windowed dataflow. The
/// runner consumes stream data through per-source archives, fires each
/// window of the for-loop as soon as the data it needs has arrived, and
/// evaluates the window through a fresh adaptive (Eddy) plan —
/// SteM builds/probes for every join edge, filter operators for every
/// predicate — followed by projection or windowed aggregation.
///
/// Landmark aggregates take the incremental O(1)-state path (§4.1.2);
/// other shapes re-evaluate the window, which is always correct.
class QueryRunner {
 public:
  struct Options {
    std::string policy = "lottery";
    uint64_t seed = 7;
    /// Start time (ST) for the query's for-loop.
    Timestamp start_time = 1;
    /// Consistency::kSpeculative support: keep a bounded history of fired
    /// windows so Revise() can recompute them when late data lands. Also
    /// disables the stateful landmark fast path (its accumulators cannot
    /// be rewound).
    bool speculative = false;
  };

  /// `archives[s]` serves source s's history; table sources read their
  /// rows from the catalog snapshot in `analyzed.defs`. Archives are
  /// shared with the server, which appends arriving data.
  QueryRunner(AnalyzedQuery analyzed, std::vector<const Archive*> archives,
              std::vector<TupleVector> table_rows, Options options);

  QueryRunner(const QueryRunner&) = delete;
  QueryRunner& operator=(const QueryRunner&) = delete;

  /// Fires every window whose data has fully arrived (right ends <=
  /// `high_watermark` for all of the window's streams). Appends one
  /// ResultSet per fired window to `out`. Returns the number fired.
  size_t Advance(Timestamp high_watermark, std::vector<ResultSet>* out);

  /// Speculative revision (DESIGN.md §15): a tuple with timestamp
  /// `late_ts` landed in (or left) the archives after windows covering it
  /// fired. Recomputes every retained fired window whose bounds contain
  /// late_ts and, for each whose result multiset changed, appends one
  /// ResultSet at the window's instant holding retraction-signed copies of
  /// the stale rows followed by the fresh assertions. No-op (returns 0)
  /// unless Options::speculative. Windows older than the retained history
  /// (kMaxFiredHistory) are never revised — the documented horizon.
  size_t Revise(Timestamp late_ts, std::vector<ResultSet>* out);

  /// True once the for-loop condition has failed (query finished).
  bool done() const { return done_; }

  const AnalyzedQuery& analyzed() const { return analyzed_; }

  /// Cumulative number of eddy routing visits across fired windows (a
  /// work measure for benches).
  uint64_t total_visits() const { return total_visits_; }

 private:
  /// Evaluates one window step and produces its result set.
  ResultSet ExecuteWindow(const WindowSequence::Step& step);

  /// Runs window contents through a fresh Eddy plan; returns wide tuples.
  std::vector<Tuple> RunDataflow(const WindowSequence::Step& step);

  AnalyzedQuery analyzed_;
  std::vector<const Archive*> archives_;
  std::vector<TupleVector> table_rows_;
  Options options_;

  WindowSequence sequence_;
  std::optional<WindowSequence::Step> pending_step_;
  bool done_ = false;
  uint64_t total_visits_ = 0;

  /// Incremental landmark-aggregate state (§4.1.2 fast path).
  std::unique_ptr<WindowAggregator> landmark_agg_;
  Timestamp landmark_fed_through_ = kMinTimestamp;
  bool use_landmark_path_ = false;
  int landmark_clause_ = -1;

  /// Speculative mode: fired windows retained for revision, oldest first.
  struct FiredWindow {
    WindowSequence::Step step;
    TupleVector rows;  ///< The rows as last delivered (or last revised).
  };
  static constexpr size_t kMaxFiredHistory = 64;
  std::deque<FiredWindow> fired_;
};

}  // namespace tcq

#endif  // TCQ_CORE_RUNNER_H_
