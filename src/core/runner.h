#ifndef TCQ_CORE_RUNNER_H_
#define TCQ_CORE_RUNNER_H_

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/analyzer.h"
#include "eddy/eddy.h"
#include "eddy/operators.h"
#include "ingress/wrapper.h"

namespace tcq {

/// One evaluation of the query over one window: the paper's output model
/// is "a sequence of sets, each set associated with an instant in time"
/// (§4.1.1).
struct ResultSet {
  Timestamp t = 0;  ///< The for-loop variable's value for this window.
  TupleVector rows;
};

/// Executes one analyzed query as a continuous, windowed dataflow. The
/// runner consumes stream data through per-source archives, fires each
/// window of the for-loop as soon as the data it needs has arrived, and
/// evaluates the window through a fresh adaptive (Eddy) plan —
/// SteM builds/probes for every join edge, filter operators for every
/// predicate — followed by projection or windowed aggregation.
///
/// Landmark aggregates take the incremental O(1)-state path (§4.1.2);
/// other shapes re-evaluate the window, which is always correct.
class QueryRunner {
 public:
  struct Options {
    std::string policy = "lottery";
    uint64_t seed = 7;
    /// Start time (ST) for the query's for-loop.
    Timestamp start_time = 1;
  };

  /// `archives[s]` serves source s's history; table sources read their
  /// rows from the catalog snapshot in `analyzed.defs`. Archives are
  /// shared with the server, which appends arriving data.
  QueryRunner(AnalyzedQuery analyzed, std::vector<const Archive*> archives,
              std::vector<TupleVector> table_rows, Options options);

  QueryRunner(const QueryRunner&) = delete;
  QueryRunner& operator=(const QueryRunner&) = delete;

  /// Fires every window whose data has fully arrived (right ends <=
  /// `high_watermark` for all of the window's streams). Appends one
  /// ResultSet per fired window to `out`. Returns the number fired.
  size_t Advance(Timestamp high_watermark, std::vector<ResultSet>* out);

  /// True once the for-loop condition has failed (query finished).
  bool done() const { return done_; }

  const AnalyzedQuery& analyzed() const { return analyzed_; }

  /// Cumulative number of eddy routing visits across fired windows (a
  /// work measure for benches).
  uint64_t total_visits() const { return total_visits_; }

 private:
  /// Evaluates one window step and produces its result set.
  ResultSet ExecuteWindow(const WindowSequence::Step& step);

  /// Runs window contents through a fresh Eddy plan; returns wide tuples.
  std::vector<Tuple> RunDataflow(const WindowSequence::Step& step);

  AnalyzedQuery analyzed_;
  std::vector<const Archive*> archives_;
  std::vector<TupleVector> table_rows_;
  Options options_;

  WindowSequence sequence_;
  std::optional<WindowSequence::Step> pending_step_;
  bool done_ = false;
  uint64_t total_visits_ = 0;

  /// Incremental landmark-aggregate state (§4.1.2 fast path).
  std::unique_ptr<WindowAggregator> landmark_agg_;
  Timestamp landmark_fed_through_ = kMinTimestamp;
  bool use_landmark_path_ = false;
  int landmark_clause_ = -1;
};

}  // namespace tcq

#endif  // TCQ_CORE_RUNNER_H_
