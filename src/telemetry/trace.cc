#include "telemetry/trace.h"

#include "telemetry/metrics.h"

namespace tcq {

const char* TraceDecisionName(TraceDecision d) {
  switch (d) {
    case TraceDecision::kPolicy:
      return "policy";
    case TraceDecision::kCached:
      return "cached";
    case TraceDecision::kSequence:
      return "sequence";
    case TraceDecision::kNone:
      return "none";
  }
  return "?";
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::Enable(uint64_t sample_every, size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  sample_every_.store(sample_every == 0 ? 1 : sample_every,
                      std::memory_order_relaxed);
}

void Tracer::Disable() {
  sample_every_.store(0, std::memory_order_relaxed);
}

void Tracer::SetClock(const VirtualClock* clock) {
  clock_.store(clock, std::memory_order_release);
}

uint64_t Tracer::MaybeStartTrace() {
  const uint64_t n = sample_every_.load(std::memory_order_relaxed);
  if (n == 0) return 0;
  // Counter-based sampling: arrivals 0, n, 2n, ... are traced. This makes
  // the traced subset a pure function of arrival order (deterministic).
  const uint64_t arrival = arrivals_.fetch_add(1, std::memory_order_relaxed);
  if (arrival % n != 0) return 0;
  sampled_.fetch_add(1, std::memory_order_relaxed);
  TCQ_METRIC([] {
    static Counter* sampled =
        MetricRegistry::Global().GetCounter("tcq.trace.sampled");
    sampled->Add(1);
  }());
  return next_id_.fetch_add(1, std::memory_order_relaxed);
}

void Tracer::Record(TraceEvent ev) {
  if (!enabled()) return;
  const VirtualClock* clock = clock_.load(std::memory_order_acquire);
  if (clock != nullptr) ev.at = clock->Now();
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() >= capacity_) {
    ring_.pop_front();
    evicted_.fetch_add(1, std::memory_order_relaxed);
  }
  ring_.push_back(std::move(ev));
}

std::vector<TraceEvent> Tracer::Drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out(std::make_move_iterator(ring_.begin()),
                              std::make_move_iterator(ring_.end()));
  ring_.clear();
  return out;
}

void Tracer::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  arrivals_.store(0, std::memory_order_relaxed);
  next_id_.store(1, std::memory_order_relaxed);
  sampled_.store(0, std::memory_order_relaxed);
  evicted_.store(0, std::memory_order_relaxed);
}

}  // namespace tcq
