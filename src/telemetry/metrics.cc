#include "telemetry/metrics.h"

#include <algorithm>

#include "common/logging.h"

namespace tcq {

uint64_t Histogram::ApproxQuantile(double q) const {
  const uint64_t total = count();
  if (total == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    cumulative += bucket(i);
    if (static_cast<double>(cumulative) >= target) return BucketBound(i);
  }
  return BucketBound(kNumBuckets - 1);
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

MetricRegistry& MetricRegistry::Global() {
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

Counter* MetricRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    TCQ_CHECK(it->second.kind == MetricKind::kCounter)
        << "metric '" << name << "' already registered with another kind";
    return it->second.counter.get();
  }
  Entry e;
  e.kind = MetricKind::kCounter;
  e.counter = std::make_unique<Counter>();
  Counter* out = e.counter.get();
  metrics_.emplace(name, std::move(e));
  return out;
}

Gauge* MetricRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    TCQ_CHECK(it->second.kind == MetricKind::kGauge)
        << "metric '" << name << "' already registered with another kind";
    return it->second.gauge.get();
  }
  Entry e;
  e.kind = MetricKind::kGauge;
  e.gauge = std::make_unique<Gauge>();
  Gauge* out = e.gauge.get();
  metrics_.emplace(name, std::move(e));
  return out;
}

Histogram* MetricRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    TCQ_CHECK(it->second.kind == MetricKind::kHistogram)
        << "metric '" << name << "' already registered with another kind";
    return it->second.histogram.get();
  }
  Entry e;
  e.kind = MetricKind::kHistogram;
  e.histogram = std::make_unique<Histogram>();
  Histogram* out = e.histogram.get();
  metrics_.emplace(name, std::move(e));
  return out;
}

Counter* MetricRegistry::GetCounter(const std::string& family, size_t index,
                                    const std::string& metric) {
  return GetCounter(family + "." + std::to_string(index) + "." + metric);
}

Gauge* MetricRegistry::GetGauge(const std::string& family, size_t index,
                                const std::string& metric) {
  return GetGauge(family + "." + std::to_string(index) + "." + metric);
}

std::vector<MetricSample> MetricRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(metrics_.size());
  for (const auto& [name, e] : metrics_) {
    MetricSample s;
    s.name = name;
    s.kind = e.kind;
    switch (e.kind) {
      case MetricKind::kCounter:
        s.value = static_cast<double>(e.counter->value());
        break;
      case MetricKind::kGauge:
        s.value = static_cast<double>(e.gauge->value());
        break;
      case MetricKind::kHistogram:
        s.value = static_cast<double>(e.histogram->count());
        s.sum = static_cast<double>(e.histogram->sum());
        s.p50 = static_cast<double>(e.histogram->ApproxQuantile(0.5));
        s.p99 = static_cast<double>(e.histogram->ApproxQuantile(0.99));
        break;
    }
    out.push_back(std::move(s));
  }
  return out;  // std::map iteration is already name-sorted.
}

size_t MetricRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return metrics_.size();
}

void MetricRegistry::ResetAllForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, e] : metrics_) {
    (void)name;
    switch (e.kind) {
      case MetricKind::kCounter:
        e.counter->Reset();
        break;
      case MetricKind::kGauge:
        e.gauge->Reset();
        break;
      case MetricKind::kHistogram:
        e.histogram->Reset();
        break;
    }
  }
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {
/// Formats a double that is logically an integer count without a trailing
/// ".000000", keeping snapshots diff-friendly.
std::string NumberJson(double v) {
  if (v == static_cast<double>(static_cast<int64_t>(v))) {
    return std::to_string(static_cast<int64_t>(v));
  }
  return std::to_string(v);
}
}  // namespace

void AppendSampleJson(const MetricSample& sample, std::string* out) {
  *out += "\"" + JsonEscape(sample.name) + "\":";
  if (sample.kind == MetricKind::kHistogram) {
    *out += "{\"count\":" + NumberJson(sample.value) +
            ",\"sum\":" + NumberJson(sample.sum) +
            ",\"p50\":" + NumberJson(sample.p50) +
            ",\"p99\":" + NumberJson(sample.p99) + "}";
  } else {
    *out += NumberJson(sample.value);
  }
}

std::string MetricRegistry::ToJson() const {
  std::string out = "{";
  bool first = true;
  for (const MetricSample& s : Snapshot()) {
    if (!first) out += ",";
    first = false;
    AppendSampleJson(s, &out);
  }
  out += "}";
  return out;
}

}  // namespace tcq
