#include "telemetry/pool_metrics.h"

#include "common/object_pool.h"
#include "telemetry/metrics.h"

namespace tcq {

void PublishPoolMetrics() {
#ifndef TCQ_METRICS_DISABLED
  struct Gauges {
    Gauge* hits = MetricRegistry::Global().GetGauge("tcq.pool.hits");
    Gauge* misses = MetricRegistry::Global().GetGauge("tcq.pool.misses");
    Gauge* returns = MetricRegistry::Global().GetGauge("tcq.pool.returns");
    Gauge* drops = MetricRegistry::Global().GetGauge("tcq.pool.drops");
    Gauge* oversize = MetricRegistry::Global().GetGauge("tcq.pool.oversize");
  };
  static Gauges g;
  const BlockPool::Stats s = BlockPool::GlobalStats();
  g.hits->Set(static_cast<int64_t>(s.hits));
  g.misses->Set(static_cast<int64_t>(s.misses));
  g.returns->Set(static_cast<int64_t>(s.returns));
  g.drops->Set(static_cast<int64_t>(s.drops));
  g.oversize->Set(static_cast<int64_t>(s.oversize));
#endif  // TCQ_METRICS_DISABLED
}

}  // namespace tcq
