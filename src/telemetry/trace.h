#ifndef TCQ_TELEMETRY_TRACE_H_
#define TCQ_TELEMETRY_TRACE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"

namespace tcq {

/// How a traced hop's routing decision was made (§4.3 "adapting
/// adaptivity": the knobs trade decision quality for decision cost, and
/// the trace shows which path each hop actually took).
enum class TraceDecision : uint8_t {
  kPolicy = 0,    ///< Fresh RoutingPolicy::Choose consultation.
  kCached = 1,    ///< Reused batch decision from the eddy's decision cache.
  kSequence = 2,  ///< Fixed-sequence continuation (no consultation).
  kNone = 3,      ///< Not a routing hop (inject/emit/discard markers).
};

const char* TraceDecisionName(TraceDecision d);

/// One hop of a sampled tuple's path through the engine.
struct TraceEvent {
  uint64_t trace_id = 0;  ///< Sample identity (1-based, per Tracer).
  int64_t tuple_seq = 0;  ///< Eddy arrival sequence number of the tuple.
  Timestamp at = 0;       ///< Tracer clock time (0 unless a clock is set).
  std::string op;  ///< Operator name, or "[inject]"/"[emit]"/"[discard]".
  TraceDecision decision = TraceDecision::kNone;
  bool passed = false;      ///< Tuple survived the hop.
  uint64_t queue_depth = 0; ///< Eddy queue length when the hop ran (the
                            ///< tuples waiting ahead — the queue-wait proxy).
};

/// Sampled per-tuple tracing: every Nth tuple entering an eddy is marked,
/// and each of its routing hops is recorded into a bounded ring buffer.
///
/// Cost model:
///  * disabled (sample_every == 0, the default): one relaxed load and a
///    predictable branch per injected tuple; zero per hop (untraced tuples
///    carry trace_id 0 and skip recording entirely). Under
///    -DTCQ_DISABLE_METRICS even that load compiles out.
///  * enabled: sampling is counter-based (every Nth arrival), so which
///    tuples get traced is a deterministic function of arrival order — no
///    randomness, reproducible under the deterministic test harness.
///    Recording takes a mutex; at 1-in-N sampling the contention is noise.
///
/// Timestamps: events are stamped from an optional VirtualClock so tests
/// control time explicitly; without one, `at` is 0 and traces are ordered
/// by buffer position only. (Wall-clock stamping would break determinism.)
class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The process-global tracer the eddies record into.
  static Tracer& Global();

  /// Starts sampling 1 in `sample_every` tuples; keeps at most `capacity`
  /// events (oldest evicted first). sample_every == 1 traces everything.
  void Enable(uint64_t sample_every, size_t capacity = 4096);
  void Disable();
  bool enabled() const {
    return sample_every_.load(std::memory_order_relaxed) != 0;
  }

  /// Clock events are stamped from; nullptr (default) stamps 0.
  /// The clock must outlive its use; not thread-safe against Record —
  /// set it before traffic flows.
  void SetClock(const VirtualClock* clock);

  /// Counts one tuple arrival; returns a fresh nonzero trace id when this
  /// arrival is sampled, 0 otherwise.
  uint64_t MaybeStartTrace();

  void Record(TraceEvent ev);

  /// Removes and returns all buffered events in record order.
  std::vector<TraceEvent> Drain();

  uint64_t sampled() const {
    return sampled_.load(std::memory_order_relaxed);
  }
  /// Events evicted because the ring was full.
  uint64_t evicted() const {
    return evicted_.load(std::memory_order_relaxed);
  }

  /// Resets counters and buffer (configuration persists). Tests only.
  void ResetForTest();

 private:
  std::atomic<uint64_t> sample_every_{0};
  std::atomic<uint64_t> arrivals_{0};
  std::atomic<uint64_t> next_id_{1};
  std::atomic<uint64_t> sampled_{0};
  std::atomic<uint64_t> evicted_{0};
  std::atomic<const VirtualClock*> clock_{nullptr};

  mutable std::mutex mu_;
  size_t capacity_ = 4096;
  std::deque<TraceEvent> ring_;
};

}  // namespace tcq

#endif  // TCQ_TELEMETRY_TRACE_H_
