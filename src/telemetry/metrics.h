#ifndef TCQ_TELEMETRY_METRICS_H_
#define TCQ_TELEMETRY_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tcq {

/// Engine-wide telemetry (ROADMAP: observe before you optimize; the
/// paper's §4.3 adaptivity loop is driven by exactly these statistics).
///
/// Design contract (DESIGN.md §10):
///  * Updates on the dataflow hot path are allocation-free: a relaxed
///    atomic add for counters/gauges, two relaxed adds plus one for the
///    bucket for histograms. Registration (naming) happens once at setup
///    and is the only place that locks or allocates.
///  * The registry is process-global and append-only: a metric, once
///    registered, lives for the process (Prometheus-style). Components
///    cache the returned pointer and never look names up again.
///  * Purely observational call sites compile out under
///    -DTCQ_DISABLE_METRICS (the TCQ_METRIC macro below); counters that
///    double as engine state (eddy routing statistics, SteM stats views)
///    stay live in every build because adaptivity reads them.

/// Wraps one relaxed atomic so that per-component statistics structs can
/// keep field-style call sites (`++s.routed`, `s.produced += n`) while
/// becoming thread-safe and snapshot-consistent. Copying reads the source
/// atomically (used by snapshot/view structs; concurrent updates during a
/// copy land in whichever side the race favors — fine for statistics).
class Counter {
 public:
  constexpr Counter() = default;
  Counter(const Counter& o) : v_(o.value()) {}
  Counter& operator=(const Counter& o) {
    v_.store(o.value(), std::memory_order_relaxed);
    return *this;
  }

  void Add(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

  /// Field-idiom shims so existing stats call sites keep reading naturally.
  Counter& operator++() {
    Add(1);
    return *this;
  }
  Counter& operator+=(uint64_t n) {
    Add(n);
    return *this;
  }
  operator uint64_t() const { return value(); }

  /// Test/reset hook: not atomic with respect to concurrent Add()s.
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// A settable signed instantaneous value (queue depth, active queries).
class Gauge {
 public:
  constexpr Gauge() = default;
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Fixed-bucket latency/size histogram: bucket i counts values whose
/// bit-width is i (0, 1, 2-3, 4-7, ...), so Record() is branch-light and
/// allocation-free. 40 buckets cover values up to ~5e11.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 40;

  constexpr Histogram() = default;

  void Record(uint64_t v) {
    size_t b = BucketOf(v);
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Upper bound of values landing in bucket i (inclusive).
  static uint64_t BucketBound(size_t i) {
    return i == 0 ? 0 : (uint64_t{1} << i) - 1;
  }
  static size_t BucketOf(uint64_t v) {
    size_t b = 0;
    while (v != 0 && b + 1 < kNumBuckets) {
      v >>= 1;
      ++b;
    }
    return b;
  }

  /// Approximate quantile (q in [0,1]): the bucket upper bound at which the
  /// cumulative count crosses q * count. Exact for 0/1-valued data, within
  /// a factor of 2 otherwise — good enough for queue depths and hop counts.
  uint64_t ApproxQuantile(double q) const;

  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One metric's value at snapshot time.
struct MetricSample {
  std::string name;
  MetricKind kind;
  double value = 0.0;  ///< Counter/gauge value; histogram count.
  // Histogram extras (kind == kHistogram only).
  double sum = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
};

/// Process-wide, thread-safe metric registry. Names follow the scheme
/// `tcq.<component>.<metric>` (lowercase, dot-separated). Re-registering a
/// name returns the existing metric (so same-named components — e.g. two
/// SteMs called "left" in different tests — share an aggregate); asking
/// for a name under a different kind is a programming error and aborts.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// The process-global registry the engine instruments against.
  static MetricRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Indexed-family access for per-shard / per-partition metrics:
  /// GetCounter("tcq.shard", 3, "routed") names "tcq.shard.3.routed".
  /// Keeps the family naming scheme in one place so dashboards can glob
  /// `tcq.shard.*.<metric>` reliably.
  Counter* GetCounter(const std::string& family, size_t index,
                      const std::string& metric);
  Gauge* GetGauge(const std::string& family, size_t index,
                  const std::string& metric);

  /// Consistent-enough snapshot of every registered metric, sorted by
  /// name. (Each value is read atomically; the set is cut under the
  /// registration lock.)
  std::vector<MetricSample> Snapshot() const;

  /// Snapshot as a JSON object: {"name": value, ...}; histograms expand to
  /// {"count":…,"sum":…,"p50":…,"p99":…}.
  std::string ToJson() const;

  size_t size() const;

  /// Zeroes every registered metric (pointers stay valid). Tests only —
  /// concurrent updates during the reset may survive it.
  void ResetAllForTest();

 private:
  struct Entry {
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> metrics_;
};

/// Appends `"name": <json>` material for one sample to `out` (shared by
/// the registry and Server::SnapshotMetrics). `out` must be inside an
/// object; the caller manages commas.
void AppendSampleJson(const MetricSample& sample, std::string* out);

/// Escapes a string for inclusion in JSON (quotes added by the caller).
std::string JsonEscape(const std::string& s);

/// Wraps a purely observational instrumentation expression so that
/// -DTCQ_DISABLE_METRICS compiles it out entirely (the CI overhead job
/// builds both ways and bounds the enabled-mode cost).
#ifdef TCQ_METRICS_DISABLED
#define TCQ_METRIC(expr) ((void)0)
#else
#define TCQ_METRIC(expr) (expr)
#endif

}  // namespace tcq

#endif  // TCQ_TELEMETRY_METRICS_H_
