#ifndef TCQ_TELEMETRY_POOL_METRICS_H_
#define TCQ_TELEMETRY_POOL_METRICS_H_

namespace tcq {

/// Copies BlockPool's process-global statistics into the metric registry
/// as tcq.pool.{hits,misses,returns,drops,oversize} gauges. The pool
/// lives in dependency-free common/ (bitset and tuple headers reach it),
/// so it cannot push into the registry itself; callers that surface
/// metrics (Server::PumpMetrics / SnapshotMetrics) pull instead. Gauge
/// values are monotonically increasing totals flushed from per-thread
/// tallies, so a snapshot may trail the truth by at most one flush
/// window per live thread. No-op when metrics are compiled out.
void PublishPoolMetrics();

}  // namespace tcq

#endif  // TCQ_TELEMETRY_POOL_METRICS_H_
