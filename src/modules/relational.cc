#include "modules/relational.h"

#include "common/logging.h"

namespace tcq {

FilterModule::FilterModule(std::string name, TupleQueuePtr in,
                           TupleQueuePtr out, ExprPtr bound_predicate)
    : FjordModule(std::move(name)),
      in_(std::move(in)),
      out_(std::move(out)),
      predicate_(std::move(bound_predicate)) {
  TCQ_CHECK(in_ != nullptr && out_ != nullptr && predicate_ != nullptr);
}

FjordModule::StepResult FilterModule::Step(size_t max_tuples) {
  size_t work = 0;
  // Flush a tuple stalled by downstream backpressure first.
  if (pending_.has_value()) {
    if (!out_->Enqueue(*pending_)) return StepResult::kIdle;
    pending_.reset();
    ++out_count_;
    ++work;
  }
  while (work < max_tuples) {
    auto t = in_->Dequeue();
    if (!t.has_value()) {
      if (work > 0) return StepResult::kDidWork;
      if (in_->Exhausted()) {
        out_->Close();
        return StepResult::kDone;
      }
      return StepResult::kIdle;
    }
    ++in_count_;
    ++work;
    const Value keep = predicate_->Eval(*t);
    if (!keep.is_null() && keep.bool_value()) {
      if (!out_->Enqueue(*t)) {
        pending_ = std::move(*t);  // Retry next quantum.
        return StepResult::kDidWork;
      }
      ++out_count_;
    }
  }
  return StepResult::kDidWork;
}

ProjectModule::ProjectModule(std::string name, TupleQueuePtr in,
                             TupleQueuePtr out, std::vector<size_t> indexes)
    : FjordModule(std::move(name)),
      in_(std::move(in)),
      out_(std::move(out)),
      indexes_(std::move(indexes)) {
  TCQ_CHECK(in_ != nullptr && out_ != nullptr);
}

FjordModule::StepResult ProjectModule::Step(size_t max_tuples) {
  size_t work = 0;
  if (pending_.has_value()) {
    if (!out_->Enqueue(*pending_)) return StepResult::kIdle;
    pending_.reset();
    ++work;
  }
  while (work < max_tuples) {
    auto t = in_->Dequeue();
    if (!t.has_value()) {
      if (work > 0) return StepResult::kDidWork;
      if (in_->Exhausted()) {
        out_->Close();
        return StepResult::kDone;
      }
      return StepResult::kIdle;
    }
    ++work;
    Tuple projected = t->Project(indexes_);
    if (!out_->Enqueue(projected)) {
      pending_ = std::move(projected);
      return StepResult::kDidWork;
    }
  }
  return StepResult::kDidWork;
}

UnionModule::UnionModule(std::string name, std::vector<TupleQueuePtr> ins,
                         TupleQueuePtr out)
    : FjordModule(std::move(name)), ins_(std::move(ins)), out_(std::move(out)) {
  TCQ_CHECK(!ins_.empty() && out_ != nullptr);
}

FjordModule::StepResult UnionModule::Step(size_t max_tuples) {
  size_t work = 0;
  if (pending_.has_value()) {
    if (!out_->Enqueue(*pending_)) return StepResult::kIdle;
    pending_.reset();
    ++forwarded_;
    ++work;
  }
  // Round-robin over inputs so a stalled source never blocks the others.
  for (size_t scanned = 0; scanned < ins_.size() && work < max_tuples;) {
    TupleQueuePtr& in = ins_[next_input_];
    auto t = in->Dequeue();
    if (t.has_value()) {
      if (!out_->Enqueue(*t)) {
        pending_ = std::move(*t);
        return StepResult::kDidWork;
      }
      ++forwarded_;
      ++work;
      scanned = 0;  // This input is live; keep the scan window fresh.
      continue;
    }
    ++scanned;
    next_input_ = (next_input_ + 1) % ins_.size();
  }
  if (work > 0) return StepResult::kDidWork;
  // All inputs dry: done only when every input is exhausted.
  size_t exhausted = 0;
  for (const TupleQueuePtr& in : ins_) {
    if (in->Exhausted()) ++exhausted;
  }
  if (exhausted == ins_.size()) {
    out_->Close();
    return StepResult::kDone;
  }
  return StepResult::kIdle;
}

DupElimModule::DupElimModule(std::string name, TupleQueuePtr in,
                             TupleQueuePtr out)
    : FjordModule(std::move(name)), in_(std::move(in)), out_(std::move(out)) {
  TCQ_CHECK(in_ != nullptr && out_ != nullptr);
}

size_t DupElimModule::CellsHash::operator()(
    const std::vector<Value>& cells) const {
  size_t h = 0x9E3779B9u;
  for (const Value& v : cells) {
    h ^= v.Hash() + 0x9E3779B9u + (h << 6) + (h >> 2);
  }
  return h;
}

FjordModule::StepResult DupElimModule::Step(size_t max_tuples) {
  size_t work = 0;
  if (pending_.has_value()) {
    if (!out_->Enqueue(*pending_)) return StepResult::kIdle;
    pending_.reset();
    ++work;
  }
  while (work < max_tuples) {
    auto t = in_->Dequeue();
    if (!t.has_value()) {
      if (work > 0) return StepResult::kDidWork;
      if (in_->Exhausted()) {
        out_->Close();
        return StepResult::kDone;
      }
      return StepResult::kIdle;
    }
    ++work;
    if (seen_.insert(t->cells()).second) {
      if (!out_->Enqueue(*t)) {
        pending_ = std::move(*t);
        return StepResult::kDidWork;
      }
    }
  }
  return StepResult::kDidWork;
}

}  // namespace tcq
