#include "modules/relational.h"

#include "common/logging.h"

namespace tcq {

FilterModule::FilterModule(std::string name, TupleQueuePtr in,
                           TupleQueuePtr out, ExprPtr bound_predicate)
    : BatchInputModule(std::move(name), std::move(in)),
      out_(std::move(out)),
      predicate_(std::move(bound_predicate)) {
  TCQ_CHECK(input() != nullptr && out_ != nullptr && predicate_ != nullptr);
}

BatchInputModule::FlushResult FilterModule::FlushPending() {
  if (!pending_.has_value()) return FlushResult::kClear;
  if (!out_->Enqueue(*pending_)) return FlushResult::kStalled;
  pending_.reset();
  ++out_count_;
  return FlushResult::kFlushed;
}

bool FilterModule::ProcessOne(Tuple& t) {
  ++in_count_;
  const Value keep = predicate_->Eval(t);
  if (keep.is_null() || !keep.bool_value()) return true;
  if (!out_->Enqueue(t)) {
    pending_ = std::move(t);  // Retry next quantum.
    return false;
  }
  ++out_count_;
  return true;
}

ProjectModule::ProjectModule(std::string name, TupleQueuePtr in,
                             TupleQueuePtr out, std::vector<size_t> indexes)
    : BatchInputModule(std::move(name), std::move(in)),
      out_(std::move(out)),
      indexes_(std::move(indexes)) {
  TCQ_CHECK(input() != nullptr && out_ != nullptr);
}

BatchInputModule::FlushResult ProjectModule::FlushPending() {
  if (!pending_.has_value()) return FlushResult::kClear;
  if (!out_->Enqueue(*pending_)) return FlushResult::kStalled;
  pending_.reset();
  return FlushResult::kFlushed;
}

bool ProjectModule::ProcessOne(Tuple& t) {
  Tuple projected = t.Project(indexes_);
  if (!out_->Enqueue(projected)) {
    pending_ = std::move(projected);
    return false;
  }
  return true;
}

UnionModule::UnionModule(std::string name, std::vector<TupleQueuePtr> ins,
                         TupleQueuePtr out)
    : FjordModule(std::move(name)), ins_(std::move(ins)), out_(std::move(out)) {
  TCQ_CHECK(!ins_.empty() && out_ != nullptr);
}

FjordModule::StepResult UnionModule::Step(size_t max_tuples) {
  size_t work = 0;
  if (pending_.has_value()) {
    if (!out_->Enqueue(*pending_)) return StepResult::kIdle;
    pending_.reset();
    ++forwarded_;
    ++work;
  }
  // Round-robin over inputs so a stalled source never blocks the others.
  for (size_t scanned = 0; scanned < ins_.size() && work < max_tuples;) {
    TupleQueuePtr& in = ins_[next_input_];
    auto t = in->Dequeue();
    if (t.has_value()) {
      if (!out_->Enqueue(*t)) {
        pending_ = std::move(*t);
        return StepResult::kDidWork;
      }
      ++forwarded_;
      ++work;
      scanned = 0;  // This input is live; keep the scan window fresh.
      continue;
    }
    ++scanned;
    next_input_ = (next_input_ + 1) % ins_.size();
  }
  if (work > 0) return StepResult::kDidWork;
  // All inputs dry: done only when every input is exhausted.
  size_t exhausted = 0;
  for (const TupleQueuePtr& in : ins_) {
    if (in->Exhausted()) ++exhausted;
  }
  if (exhausted == ins_.size()) {
    out_->Close();
    return StepResult::kDone;
  }
  return StepResult::kIdle;
}

DupElimModule::DupElimModule(std::string name, TupleQueuePtr in,
                             TupleQueuePtr out)
    : BatchInputModule(std::move(name), std::move(in)),
      out_(std::move(out)) {
  TCQ_CHECK(input() != nullptr && out_ != nullptr);
}

size_t DupElimModule::CellsHash::operator()(
    const std::vector<Value>& cells) const {
  size_t h = 0x9E3779B9u;
  for (const Value& v : cells) {
    h ^= v.Hash() + 0x9E3779B9u + (h << 6) + (h >> 2);
  }
  return h;
}

BatchInputModule::FlushResult DupElimModule::FlushPending() {
  if (!pending_.has_value()) return FlushResult::kClear;
  if (!out_->Enqueue(*pending_)) return FlushResult::kStalled;
  pending_.reset();
  return FlushResult::kFlushed;
}

bool DupElimModule::ProcessOne(Tuple& t) {
  if (seen_.emplace(t.cells().begin(), t.cells().end()).second) {
    if (!out_->Enqueue(t)) {
      pending_ = std::move(t);
      return false;
    }
  }
  return true;
}

}  // namespace tcq
