#ifndef TCQ_MODULES_SORT_TC_H_
#define TCQ_MODULES_SORT_TC_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "expr/ast.h"
#include "fjords/module.h"

namespace tcq {

/// Sort (Figure 1): a blocking-by-nature operator made stream-friendly by
/// sorting *per punctuation window*: tuples buffer until the input's
/// timestamp advances past the current window, then the window's tuples
/// are emitted in key order. With window_span = max, it degenerates into
/// a classic full sort at end-of-stream.
class SortModule : public FjordModule {
 public:
  /// `key` is a bound expression; ascending order by Value::Compare.
  SortModule(std::string name, TupleQueuePtr in, TupleQueuePtr out,
             ExprPtr key, Timestamp window_span);

  StepResult Step(size_t max_tuples) override;

 private:
  void FlushWindow(Timestamp upto);

  TupleQueuePtr in_;
  TupleQueuePtr out_;
  ExprPtr key_;
  Timestamp window_span_;
  Timestamp window_start_ = kMinTimestamp;
  std::vector<Tuple> buffer_;
  std::vector<Tuple> emit_queue_;
  size_t emit_pos_ = 0;
};

/// Transitive closure (Figure 1): consumes edge tuples (from, to) and
/// emits every NEWLY derivable reachability pair, incrementally
/// (semi-naive evaluation). Each derived pair is emitted exactly once;
/// self-pairs are not derived unless the input contains a cycle edge.
class TransitiveClosureModule : public FjordModule {
 public:
  TransitiveClosureModule(std::string name, TupleQueuePtr in,
                          TupleQueuePtr out);

  StepResult Step(size_t max_tuples) override;

  size_t closure_size() const { return closure_pairs_; }

 private:
  /// Inserts (a, b); returns newly derived pairs to emit.
  void AddEdge(const Value& a, const Value& b, Timestamp ts);

  TupleQueuePtr in_;
  TupleQueuePtr out_;
  // reachable_[a] = set of nodes reachable from a (closure rows).
  std::map<Value, std::set<Value>> reachable_;
  // inverse_[b] = set of nodes that reach b.
  std::map<Value, std::set<Value>> inverse_;
  std::vector<Tuple> emit_queue_;
  size_t emit_pos_ = 0;
  size_t closure_pairs_ = 0;
};

}  // namespace tcq

#endif  // TCQ_MODULES_SORT_TC_H_
