#ifndef TCQ_MODULES_JUGGLE_H_
#define TCQ_MODULES_JUGGLE_H_

#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "fjords/module.h"

namespace tcq {

/// Juggle [RRH99]: online reordering. Buffers its input and emits the
/// highest-priority tuples first, so records the user cares about surface
/// early in a long-running dataflow. Priority is a user function of the
/// tuple (larger = sooner). The buffer is bounded: at capacity, the lowest-
/// priority buffered tuple is emitted (spilled downstream) to make room —
/// reordering is best-effort, never lossy.
class JuggleModule : public FjordModule {
 public:
  using PriorityFn = std::function<double(const Tuple&)>;

  JuggleModule(std::string name, TupleQueuePtr in, TupleQueuePtr out,
               PriorityFn priority, size_t buffer_capacity = 1024);

  StepResult Step(size_t max_tuples) override;

  size_t buffered() const { return heap_.size(); }

 private:
  struct Entry {
    double priority;
    uint64_t tie;  ///< Arrival order; earlier wins ties (stable-ish).
    Tuple tuple;
    bool operator<(const Entry& other) const {
      if (priority != other.priority) return priority < other.priority;
      return tie > other.tie;
    }
  };

  /// Releases the best buffered tuple; false if the output is full.
  bool Emit();

  TupleQueuePtr in_;
  TupleQueuePtr out_;
  PriorityFn priority_;
  size_t capacity_;
  std::priority_queue<Entry> heap_;
  uint64_t arrivals_ = 0;
};

}  // namespace tcq

#endif  // TCQ_MODULES_JUGGLE_H_
