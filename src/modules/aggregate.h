#ifndef TCQ_MODULES_AGGREGATE_H_
#define TCQ_MODULES_AGGREGATE_H_

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/clock.h"
#include "expr/ast.h"
#include "tuple/schema.h"
#include "tuple/tuple.h"

namespace tcq {

/// One aggregate output column: `AVG(closingPrice) AS avg_price`.
struct AggregateSpec {
  AggKind kind;
  ExprPtr arg;  ///< Bound against the input schema; null for COUNT(*).
  std::string output_name;
};

/// A streaming accumulator for one group. COUNT/SUM/AVG are subtractable
/// (sliding windows can retire tuples in O(1)); MIN/MAX are not — §4.1.2's
/// observation that a sliding MAX requires retaining the window.
class Accumulator {
 public:
  explicit Accumulator(size_t num_aggs) : states_(num_aggs) {}

  void Add(const std::vector<AggregateSpec>& specs, const Tuple& t);
  /// Retires a tuple. Only valid when Subtractable(specs).
  void Remove(const std::vector<AggregateSpec>& specs, const Tuple& t);

  Value Final(const AggregateSpec& spec, size_t i) const;

  static bool Subtractable(const std::vector<AggregateSpec>& specs);

  int64_t total_count() const { return rows_; }

 private:
  struct State {
    int64_t count = 0;     ///< Non-null inputs.
    double sum = 0.0;
    bool has_extreme = false;
    Value extreme;         ///< Running MIN or MAX.
  };
  std::vector<State> states_;
  int64_t rows_ = 0;
};

/// Windowed, optionally grouped aggregation. The caller streams tuples in
/// (Add) and asks for the result rows of the current window (Emit). Two
/// retirement modes cover the paper's window taxonomy:
///  * landmark / snapshot: never retire — purely incremental, O(1) state;
///  * sliding / hopping / reverse: SetWindow(lo, hi) retires tuples that
///    left the window — O(1) for subtractable aggregates, recompute from
///    the retained buffer otherwise.
class WindowAggregator {
 public:
  /// `group_by` are bound expressions forming the group key (may be empty).
  /// `retain_tuples` = false enables the landmark fast path (no buffer).
  WindowAggregator(std::vector<AggregateSpec> specs,
                   std::vector<ExprPtr> group_by, bool retain_tuples);

  void Add(const Tuple& t);

  /// Retires tuples with timestamp outside [lo, hi]. Requires
  /// retain_tuples; tuples that re-enter later windows must be re-Added.
  void SetWindow(Timestamp lo, Timestamp hi);

  /// Result rows for the current state: group-by values then one value per
  /// aggregate, in spec order. Deterministic group order (sorted by key).
  TupleVector Emit(Timestamp result_ts) const;

  void Reset();

  size_t buffered_tuples() const { return buffer_.size(); }
  uint64_t recomputes() const { return recomputes_; }

 private:
  std::vector<Value> GroupKey(const Tuple& t) const;
  void Recompute();

  const std::vector<AggregateSpec> specs_;
  const std::vector<ExprPtr> group_by_;
  const bool retain_tuples_;
  const bool subtractable_;

  std::map<std::vector<Value>, Accumulator> groups_;
  std::deque<Tuple> buffer_;  ///< Window contents (only when retaining).
  Timestamp lo_ = kMinTimestamp;
  Timestamp hi_ = kMaxTimestamp;
  uint64_t recomputes_ = 0;
};

}  // namespace tcq

#endif  // TCQ_MODULES_AGGREGATE_H_
