#include "modules/juggle.h"

#include "common/logging.h"

namespace tcq {

JuggleModule::JuggleModule(std::string name, TupleQueuePtr in,
                           TupleQueuePtr out, PriorityFn priority,
                           size_t buffer_capacity)
    : FjordModule(std::move(name)),
      in_(std::move(in)),
      out_(std::move(out)),
      priority_(std::move(priority)),
      capacity_(buffer_capacity) {
  TCQ_CHECK(in_ != nullptr && out_ != nullptr && priority_ != nullptr);
  TCQ_CHECK(capacity_ > 0);
}

bool JuggleModule::Emit() {
  // priority_queue is a max-heap: top() is the best tuple to release.
  // Backpressure: if the output is full the entry stays buffered.
  if (!out_->Enqueue(heap_.top().tuple)) return false;
  heap_.pop();
  return true;
}

FjordModule::StepResult JuggleModule::Step(size_t max_tuples) {
  size_t work = 0;
  while (work < max_tuples) {
    auto t = in_->Dequeue();
    if (!t.has_value()) {
      if (in_->Exhausted()) {
        // Input done: drain the buffer best-first.
        while (!heap_.empty() && work < max_tuples) {
          if (!Emit()) break;
          ++work;
        }
        if (heap_.empty()) {
          out_->Close();
          return StepResult::kDone;
        }
        return StepResult::kDidWork;
      }
      // Input momentarily dry: opportunistically release the current best
      // so downstream always has the most interesting data available.
      if (!heap_.empty() && Emit()) {
        ++work;
      }
      return work > 0 ? StepResult::kDidWork : StepResult::kIdle;
    }
    ++work;
    heap_.push(Entry{priority_(*t), arrivals_++, std::move(*t)});
    if (heap_.size() > capacity_) Emit();  // Best-effort spill downstream.
  }
  return StepResult::kDidWork;
}

}  // namespace tcq
