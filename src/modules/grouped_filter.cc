#include "modules/grouped_filter.h"

#include <algorithm>

#include "common/logging.h"
#include "telemetry/metrics.h"

namespace tcq {

#ifndef TCQ_METRICS_DISABLED
namespace {

/// Process-wide grouped-filter probe count (shared predicate-index work
/// saved vs. per-query evaluation is applies * avg predicates).
Counter* AppliesCounter() {
  static Counter* c =
      MetricRegistry::Global().GetCounter("tcq.grouped_filter.applies");
  return c;
}

/// Lazy index compilations — should stay O(#mutation bursts), not
/// O(#tuples); a hot value here means predicate churn is interleaving
/// with ingest.
Counter* RebuildsCounter() {
  static Counter* c =
      MetricRegistry::Global().GetCounter("tcq.grouped_filter.rebuilds");
  return c;
}

}  // namespace
#endif  // TCQ_METRICS_DISABLED

void GroupedFilter::EnsureQuery(QueryId q) {
  if (q >= totals_.size()) {
    totals_.resize(q + 1, 0);
    ne_counts_.resize(q + 1, 0);
    eq_counts_.resize(q + 1, 0);
    has_pred_.Resize(q + 1);
    dirty_ = true;  // Region and scratch bitsets widen at next rebuild.
  }
}

void GroupedFilter::AddPredicate(QueryId q, BinaryOp op, Value constant) {
  EnsureQuery(q);
  switch (op) {
    case BinaryOp::kEq:
      eq_[std::move(constant)].push_back(q);
      ++eq_counts_[q];
      break;
    case BinaryOp::kNe:
      ne_[std::move(constant)].push_back(q);
      ++ne_counts_[q];
      break;
    case BinaryOp::kGt:
    case BinaryOp::kGe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
      ranges_.push_back(RangePred{std::move(constant), q, op});
      break;
    default:
      TCQ_CHECK(false) << "unsupported grouped-filter op";
  }
  ++totals_[q];
  ++num_predicates_;
  has_pred_.Set(q);
  dirty_ = true;
}

void GroupedFilter::RemoveQuery(QueryId q) {
  if (q >= totals_.size() || totals_[q] == 0) return;
  num_predicates_ -= totals_[q];
  totals_[q] = 0;
  ne_counts_[q] = 0;
  eq_counts_[q] = 0;
  has_pred_.Clear(q);

  auto scrub_map = [q](auto* m) {
    for (auto it = m->begin(); it != m->end();) {
      auto& vec = it->second;
      vec.erase(std::remove(vec.begin(), vec.end(), q), vec.end());
      it = vec.empty() ? m->erase(it) : std::next(it);
    }
  };
  scrub_map(&eq_);
  scrub_map(&ne_);
  ranges_.erase(
      std::remove_if(ranges_.begin(), ranges_.end(),
                     [q](const RangePred& r) { return r.query == q; }),
      ranges_.end());
  dirty_ = true;
}

size_t GroupedFilter::RegionOf(const Value& v) const {
  const size_t i = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  // lower_bound guarantees !(bounds_[i] < v); equal iff also !(v < bounds_[i]).
  if (i < bounds_.size() && !(v < bounds_[i])) return 2 * i + 1;
  return 2 * i;
}

void GroupedFilter::RebuildIndex() const {
  TCQ_METRIC(RebuildsCounter()->Add(1));
  ++rebuilds_;
  dirty_ = false;
  const size_t n = totals_.size();

  bounds_.clear();
  bounds_.reserve(ranges_.size());
  for (const RangePred& r : ranges_) bounds_.push_back(r.constant);
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  const size_t num_regions = 2 * bounds_.size() + 1;

  // Per-query region interval [lo, hi], aggregated per registered range
  // factor — everything below is sized by live registrations plus
  // O(width/64) word ops, never by a per-id O(width) element loop:
  // QueryIds are allocated monotonically and churn leaves the id space
  // sparse, so at k live queries after many submit/cancel cycles the
  // width can be orders of magnitude larger than k. Each range factor on
  // bound c_i (region index 2i+1 for the point) tightens the interval:
  //   > c_i  -> lo = max(lo, 2i+2)        >= c_i -> lo = max(lo, 2i+1)
  //   < c_i  -> hi = min(hi, 2i)          <= c_i -> hi = min(hi, 2i+1)
  // A contradictory range (lo > hi) covers nothing.
  intervals_scratch_.clear();
  for (const RangePred& r : ranges_) {
    const size_t i = static_cast<size_t>(
        std::lower_bound(bounds_.begin(), bounds_.end(), r.constant) -
        bounds_.begin());
    size_t lo = 0, hi = num_regions - 1;
    switch (r.op) {
      case BinaryOp::kGt:
        lo = 2 * i + 2;
        break;
      case BinaryOp::kGe:
        lo = 2 * i + 1;
        break;
      case BinaryOp::kLt:
        hi = 2 * i;
        break;
      case BinaryOp::kLe:
        hi = 2 * i + 1;
        break;
      default:
        TCQ_CHECK(false) << "non-range op in range list";
    }
    intervals_scratch_.push_back(QueryInterval{r.query, lo, hi});
  }
  std::sort(intervals_scratch_.begin(), intervals_scratch_.end(),
            [](const QueryInterval& a, const QueryInterval& b) {
              return a.query < b.query;
            });

  // Sweep the regions once, materializing each region's pass-bitset from
  // enter/exit deltas. Only ranged queries need deltas: range-free
  // queries cover every region, so they seed the running set instead.
  enter_scratch_.resize(num_regions);
  exit_scratch_.resize(num_regions + 1);
  for (auto& v : enter_scratch_) v.clear();
  for (auto& v : exit_scratch_) v.clear();
  has_range_scratch_.Resize(n);
  has_range_scratch_.ClearAll();
  for (size_t i = 0; i < intervals_scratch_.size();) {
    const QueryId q = intervals_scratch_[i].query;
    size_t lo = 0, hi = num_regions - 1;
    for (; i < intervals_scratch_.size() && intervals_scratch_[i].query == q;
         ++i) {
      lo = std::max(lo, intervals_scratch_[i].lo);
      hi = std::min(hi, intervals_scratch_[i].hi);
    }
    has_range_scratch_.Set(q);
    if (lo > hi) continue;  // Contradictory: passes nowhere.
    enter_scratch_[lo].push_back(q);
    exit_scratch_[hi + 1].push_back(q);
  }
  sweep_scratch_ = has_pred_;
  sweep_scratch_ -= has_range_scratch_;
  region_pass_.resize(num_regions);
  for (size_t r = 0; r < num_regions; ++r) {
    for (QueryId q : exit_scratch_[r]) sweep_scratch_.Clear(q);
    for (QueryId q : enter_scratch_[r]) sweep_scratch_.Set(q);
    region_pass_[r] = sweep_scratch_;
  }

  // no_eq = has_pred minus every query holding an = factor (eq_ buckets
  // enumerate exactly those — RemoveQuery scrubs them).
  no_eq_ = has_pred_;
  for (const auto& [val, qs] : eq_) {
    for (QueryId q : qs) no_eq_.Clear(q);
  }

  // A query's = factors all hold at v iff its occurrence count in the v
  // bucket equals its total = factor count (duplicates collapse, factors
  // on two distinct constants can never all hold).
  eq_full_.clear();
  std::vector<QueryId> sorted;
  for (const auto& [val, qs] : eq_) {
    sorted = qs;
    std::sort(sorted.begin(), sorted.end());
    auto& full = eq_full_[val];
    for (size_t i = 0; i < sorted.size();) {
      size_t j = i;
      while (j < sorted.size() && sorted[j] == sorted[i]) ++j;
      if (j - i == eq_counts_[sorted[i]]) full.push_back(sorted[i]);
      i = j;
    }
  }

  ne_hit_.clear();
  for (const auto& [val, qs] : ne_) {
    auto& hit = ne_hit_[val];
    hit = qs;
    std::sort(hit.begin(), hit.end());
    hit.erase(std::unique(hit.begin(), hit.end()), hit.end());
  }

  // Size the Apply scratch here, once per compile: the hot path below
  // only copy-assigns into equal-capacity buffers.
  pass_scratch_.Resize(n);
  eq_scratch_.Resize(n);
  fail_scratch_.Resize(n);
}

void GroupedFilter::Apply(const Value& v, SmallBitset* candidates) const {
  if (num_predicates_ == 0) return;
  TCQ_METRIC(AppliesCounter()->Add(1));
  TCQ_DCHECK(candidates->size_bits() >= totals_.size());
  if (dirty_) RebuildIndex();

  // pass = region_pass[seg] & (no_eq | eq_full(v)) & ~ne_hit(v).
  pass_scratch_ = region_pass_[RegionOf(v)];
  if (!eq_.empty()) {
    eq_scratch_ = no_eq_;
    if (auto it = eq_full_.find(v); it != eq_full_.end()) {
      for (QueryId q : it->second) eq_scratch_.Set(q);
    }
    pass_scratch_ &= eq_scratch_;
  }
  if (!ne_.empty()) {
    if (auto it = ne_hit_.find(v); it != ne_hit_.end()) {
      for (QueryId q : it->second) pass_scratch_.Clear(q);
    }
  }

  // fail = has_pred − pass; candidates −= fail. SubtractPrefix tolerates
  // a wider candidate set (tuple lineage sized to the engine's query
  // table) without resizing anything on the hot path.
  fail_scratch_ = has_pred_;
  fail_scratch_ -= pass_scratch_;
  candidates->SubtractPrefix(fail_scratch_);
}

SmallBitset GroupedFilter::Matching(const Value& v) const {
  SmallBitset all(totals_.size());
  all.SetAll();
  Apply(v, &all);
  return all;
}

}  // namespace tcq
