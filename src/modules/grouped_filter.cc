#include "modules/grouped_filter.h"

#include <algorithm>

#include "common/logging.h"
#include "telemetry/metrics.h"

namespace tcq {

#ifndef TCQ_METRICS_DISABLED
namespace {

/// Process-wide grouped-filter probe count (shared predicate-index work
/// saved vs. per-query evaluation is applies * avg predicates).
Counter* AppliesCounter() {
  static Counter* c =
      MetricRegistry::Global().GetCounter("tcq.grouped_filter.applies");
  return c;
}

}  // namespace
#endif  // TCQ_METRICS_DISABLED

void GroupedFilter::EnsureQuery(QueryId q) {
  if (q >= totals_.size()) {
    totals_.resize(q + 1, 0);
    ne_counts_.resize(q + 1, 0);
    has_pred_.Resize(q + 1);
    ne_default_.Resize(q + 1);
    scratch_count_.resize(q + 1, 0);
    scratch_stamp_.resize(q + 1, 0);
    pass_scratch_.Resize(q + 1);
  }
}

void GroupedFilter::AddPredicate(QueryId q, BinaryOp op, Value constant) {
  EnsureQuery(q);
  switch (op) {
    case BinaryOp::kEq:
      eq_[constant].push_back(q);
      break;
    case BinaryOp::kNe:
      ne_[constant].push_back(q);
      ++ne_counts_[q];
      break;
    case BinaryOp::kGt: {
      BoundEntry e{std::move(constant), q};
      auto it = std::lower_bound(
          gt_.begin(), gt_.end(), e,
          [](const BoundEntry& a, const BoundEntry& b) {
            return a.constant < b.constant;
          });
      gt_.insert(it, std::move(e));
      break;
    }
    case BinaryOp::kGe: {
      BoundEntry e{std::move(constant), q};
      auto it = std::lower_bound(
          ge_.begin(), ge_.end(), e,
          [](const BoundEntry& a, const BoundEntry& b) {
            return a.constant < b.constant;
          });
      ge_.insert(it, std::move(e));
      break;
    }
    case BinaryOp::kLt: {
      BoundEntry e{std::move(constant), q};
      auto it = std::lower_bound(
          lt_.begin(), lt_.end(), e,
          [](const BoundEntry& a, const BoundEntry& b) {
            return a.constant > b.constant;
          });
      lt_.insert(it, std::move(e));
      break;
    }
    case BinaryOp::kLe: {
      BoundEntry e{std::move(constant), q};
      auto it = std::lower_bound(
          le_.begin(), le_.end(), e,
          [](const BoundEntry& a, const BoundEntry& b) {
            return a.constant > b.constant;
          });
      le_.insert(it, std::move(e));
      break;
    }
    default:
      TCQ_CHECK(false) << "unsupported grouped-filter op";
  }
  ++totals_[q];
  ++num_predicates_;
  has_pred_.Set(q);
  if (totals_[q] == ne_counts_[q]) {
    ne_default_.Set(q);
  } else {
    ne_default_.Clear(q);
  }
}

void GroupedFilter::RemoveQuery(QueryId q) {
  if (q >= totals_.size() || totals_[q] == 0) return;
  num_predicates_ -= totals_[q];
  totals_[q] = 0;
  ne_counts_[q] = 0;
  has_pred_.Clear(q);
  ne_default_.Clear(q);

  auto scrub_map = [q](auto* m) {
    for (auto it = m->begin(); it != m->end();) {
      auto& vec = it->second;
      vec.erase(std::remove(vec.begin(), vec.end(), q), vec.end());
      it = vec.empty() ? m->erase(it) : std::next(it);
    }
  };
  scrub_map(&eq_);
  scrub_map(&ne_);
  auto scrub_vec = [q](std::vector<BoundEntry>* v) {
    v->erase(std::remove_if(v->begin(), v->end(),
                            [q](const BoundEntry& e) { return e.query == q; }),
             v->end());
  };
  scrub_vec(&gt_);
  scrub_vec(&ge_);
  scrub_vec(&lt_);
  scrub_vec(&le_);
}

void GroupedFilter::Apply(const Value& v, SmallBitset* candidates) const {
  if (num_predicates_ == 0) return;
  TCQ_METRIC(AppliesCounter()->Add(1));
  TCQ_DCHECK(candidates->size_bits() >= totals_.size());

  ++stamp_;
  touched_.clear();
  auto touch = [&](QueryId q, int delta) {
    if (scratch_stamp_[q] != stamp_) {
      scratch_stamp_[q] = stamp_;
      scratch_count_[q] = 0;
      touched_.push_back(q);
    }
    scratch_count_[q] += delta;
  };

  if (auto it = eq_.find(v); it != eq_.end()) {
    for (QueryId q : it->second) touch(q, +1);
  }
  if (auto it = ne_.find(v); it != ne_.end()) {
    for (QueryId q : it->second) touch(q, -1);
  }
  // attr > c passes when c < v: ascending prefix.
  for (const BoundEntry& e : gt_) {
    if (!(e.constant < v)) break;
    touch(e.query, +1);
  }
  // attr >= c passes when c <= v.
  for (const BoundEntry& e : ge_) {
    if (!(e.constant <= v)) break;
    touch(e.query, +1);
  }
  // attr < c passes when c > v: descending prefix.
  for (const BoundEntry& e : lt_) {
    if (!(e.constant > v)) break;
    touch(e.query, +1);
  }
  // attr <= c passes when c >= v.
  for (const BoundEntry& e : le_) {
    if (!(e.constant >= v)) break;
    touch(e.query, +1);
  }

  // pass = ne_default, corrected by every touched query's exact count.
  pass_scratch_ = ne_default_;
  for (QueryId q : touched_) {
    const int32_t satisfied =
        static_cast<int32_t>(ne_counts_[q]) + scratch_count_[q];
    if (satisfied == static_cast<int32_t>(totals_[q])) {
      pass_scratch_.Set(q);
    } else {
      pass_scratch_.Clear(q);
    }
  }

  // fail = has_pred − pass; candidates −= fail.
  SmallBitset fail = has_pred_;
  fail -= pass_scratch_;
  if (fail.size_bits() < candidates->size_bits()) {
    fail.Resize(candidates->size_bits());
  }
  *candidates -= fail;
}

SmallBitset GroupedFilter::Matching(const Value& v) const {
  SmallBitset all(totals_.size());
  all.SetAll();
  Apply(v, &all);
  return all;
}

}  // namespace tcq
