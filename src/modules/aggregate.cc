#include "modules/aggregate.h"

#include <algorithm>

#include "common/logging.h"

namespace tcq {

void Accumulator::Add(const std::vector<AggregateSpec>& specs,
                      const Tuple& t) {
  ++rows_;
  for (size_t i = 0; i < specs.size(); ++i) {
    State& s = states_[i];
    if (specs[i].arg == nullptr) {  // COUNT(*).
      ++s.count;
      continue;
    }
    const Value v = specs[i].arg->Eval(t);
    if (v.is_null()) continue;
    ++s.count;
    switch (specs[i].kind) {
      case AggKind::kCount:
        break;
      case AggKind::kSum:
      case AggKind::kAvg:
        s.sum += v.AsDouble();
        break;
      case AggKind::kMin:
        if (!s.has_extreme || v < s.extreme) {
          s.extreme = v;
          s.has_extreme = true;
        }
        break;
      case AggKind::kMax:
        if (!s.has_extreme || v > s.extreme) {
          s.extreme = v;
          s.has_extreme = true;
        }
        break;
    }
  }
}

void Accumulator::Remove(const std::vector<AggregateSpec>& specs,
                         const Tuple& t) {
  TCQ_DCHECK(Subtractable(specs)) << "MIN/MAX cannot retire incrementally";
  --rows_;
  for (size_t i = 0; i < specs.size(); ++i) {
    State& s = states_[i];
    if (specs[i].arg == nullptr) {
      --s.count;
      continue;
    }
    const Value v = specs[i].arg->Eval(t);
    if (v.is_null()) continue;
    --s.count;
    if (specs[i].kind == AggKind::kSum || specs[i].kind == AggKind::kAvg) {
      s.sum -= v.AsDouble();
    }
  }
}

bool Accumulator::Subtractable(const std::vector<AggregateSpec>& specs) {
  return std::all_of(specs.begin(), specs.end(), [](const AggregateSpec& s) {
    return s.kind == AggKind::kCount || s.kind == AggKind::kSum ||
           s.kind == AggKind::kAvg;
  });
}

Value Accumulator::Final(const AggregateSpec& spec, size_t i) const {
  const State& s = states_[i];
  switch (spec.kind) {
    case AggKind::kCount:
      return Value::Int64(s.count);
    case AggKind::kSum:
      if (s.count == 0) return Value::Null();
      if (spec.arg != nullptr && spec.arg->result_type() == ValueType::kInt64) {
        return Value::Int64(static_cast<int64_t>(s.sum));
      }
      return Value::Double(s.sum);
    case AggKind::kAvg:
      if (s.count == 0) return Value::Null();
      return Value::Double(s.sum / static_cast<double>(s.count));
    case AggKind::kMin:
    case AggKind::kMax:
      return s.has_extreme ? s.extreme : Value::Null();
  }
  return Value::Null();
}

WindowAggregator::WindowAggregator(std::vector<AggregateSpec> specs,
                                   std::vector<ExprPtr> group_by,
                                   bool retain_tuples)
    : specs_(std::move(specs)),
      group_by_(std::move(group_by)),
      retain_tuples_(retain_tuples),
      subtractable_(Accumulator::Subtractable(specs_)) {
  TCQ_CHECK(!specs_.empty());
}

std::vector<Value> WindowAggregator::GroupKey(const Tuple& t) const {
  std::vector<Value> key;
  key.reserve(group_by_.size());
  for (const ExprPtr& e : group_by_) key.push_back(e->Eval(t));
  return key;
}

void WindowAggregator::Add(const Tuple& t) {
  auto [it, inserted] =
      groups_.try_emplace(GroupKey(t), Accumulator(specs_.size()));
  it->second.Add(specs_, t);
  if (retain_tuples_) buffer_.push_back(t);
}

void WindowAggregator::SetWindow(Timestamp lo, Timestamp hi) {
  lo_ = lo;
  hi_ = hi;
  if (!retain_tuples_) return;  // Landmark fast path: nothing retires.

  // Partition buffer into keep / retire.
  std::deque<Tuple> keep;
  std::vector<Tuple> retired;
  for (Tuple& t : buffer_) {
    if (t.timestamp() >= lo_ && t.timestamp() <= hi_) {
      keep.push_back(std::move(t));
    } else {
      retired.push_back(std::move(t));
    }
  }
  buffer_ = std::move(keep);
  if (retired.empty()) return;

  if (subtractable_) {
    for (const Tuple& t : retired) {
      auto it = groups_.find(GroupKey(t));
      TCQ_DCHECK(it != groups_.end());
      it->second.Remove(specs_, t);
      if (it->second.total_count() == 0) groups_.erase(it);
    }
  } else {
    Recompute();
  }
}

void WindowAggregator::Recompute() {
  ++recomputes_;
  groups_.clear();
  for (const Tuple& t : buffer_) {
    auto [it, inserted] =
        groups_.try_emplace(GroupKey(t), Accumulator(specs_.size()));
    it->second.Add(specs_, t);
  }
}

TupleVector WindowAggregator::Emit(Timestamp result_ts) const {
  TupleVector rows;
  // SQL semantics: an UNGROUPED aggregate over an empty window still
  // produces one row (COUNT = 0, SUM/AVG/MIN/MAX = NULL); a grouped one
  // produces no rows.
  if (groups_.empty() && group_by_.empty()) {
    Accumulator empty(specs_.size());
    std::vector<Value> cells;
    cells.reserve(specs_.size());
    for (size_t i = 0; i < specs_.size(); ++i) {
      cells.push_back(empty.Final(specs_[i], i));
    }
    rows.push_back(Tuple::Make(std::move(cells), result_ts));
    return rows;
  }
  rows.reserve(groups_.size());
  for (const auto& [key, acc] : groups_) {
    std::vector<Value> cells = key;
    for (size_t i = 0; i < specs_.size(); ++i) {
      cells.push_back(acc.Final(specs_[i], i));
    }
    rows.push_back(Tuple::Make(std::move(cells), result_ts));
  }
  return rows;
}

void WindowAggregator::Reset() {
  groups_.clear();
  buffer_.clear();
  lo_ = kMinTimestamp;
  hi_ = kMaxTimestamp;
}

}  // namespace tcq
