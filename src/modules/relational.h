#ifndef TCQ_MODULES_RELATIONAL_H_
#define TCQ_MODULES_RELATIONAL_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "expr/ast.h"
#include "fjords/module.h"

namespace tcq {

/// Queue-connected selection: forwards tuples satisfying a bound predicate.
/// These queue-based modules form standalone Fjord dataflows (§2.3); inside
/// an Eddy the operator variants in eddy/operators.h are used instead.
class FilterModule : public BatchInputModule {
 public:
  FilterModule(std::string name, TupleQueuePtr in, TupleQueuePtr out,
               ExprPtr bound_predicate);

  uint64_t in_count() const { return in_count_; }
  uint64_t out_count() const { return out_count_; }

 protected:
  bool ProcessOne(Tuple& t) override;
  FlushResult FlushPending() override;
  void OnInputExhausted() override { out_->Close(); }

 private:
  TupleQueuePtr out_;
  ExprPtr predicate_;
  std::optional<Tuple> pending_;  ///< Output stalled by backpressure.
  uint64_t in_count_ = 0;
  uint64_t out_count_ = 0;
};

/// Queue-connected projection by cell indexes.
class ProjectModule : public BatchInputModule {
 public:
  ProjectModule(std::string name, TupleQueuePtr in, TupleQueuePtr out,
                std::vector<size_t> indexes);

 protected:
  bool ProcessOne(Tuple& t) override;
  FlushResult FlushPending() override;
  void OnInputExhausted() override { out_->Close(); }

 private:
  TupleQueuePtr out_;
  std::vector<size_t> indexes_;
  std::optional<Tuple> pending_;
};

/// Merges several input queues into one output, taking whatever is
/// available from any input — the non-blocking discipline that lets a plan
/// keep draining live sources while another source stalls (§2.3).
class UnionModule : public FjordModule {
 public:
  UnionModule(std::string name, std::vector<TupleQueuePtr> ins,
              TupleQueuePtr out);

  StepResult Step(size_t max_tuples) override;

  uint64_t forwarded() const { return forwarded_; }

 private:
  std::vector<TupleQueuePtr> ins_;
  TupleQueuePtr out_;
  std::optional<Tuple> pending_;
  uint64_t forwarded_ = 0;
  size_t next_input_ = 0;  ///< Round-robin fairness cursor.
};

/// Duplicate elimination on the projected cell values (timestamps ignored).
class DupElimModule : public BatchInputModule {
 public:
  DupElimModule(std::string name, TupleQueuePtr in, TupleQueuePtr out);

  size_t distinct_count() const { return seen_.size(); }

 protected:
  bool ProcessOne(Tuple& t) override;
  FlushResult FlushPending() override;
  void OnInputExhausted() override { out_->Close(); }

 private:
  struct CellsHash {
    size_t operator()(const std::vector<Value>& cells) const;
  };
  TupleQueuePtr out_;
  std::optional<Tuple> pending_;
  std::unordered_set<std::vector<Value>, CellsHash> seen_;
};

}  // namespace tcq

#endif  // TCQ_MODULES_RELATIONAL_H_
