#include "modules/sort_tc.h"

#include <algorithm>

#include "common/logging.h"

namespace tcq {

// ------------------------------------------------------------- SortModule

SortModule::SortModule(std::string name, TupleQueuePtr in, TupleQueuePtr out,
                       ExprPtr key, Timestamp window_span)
    : FjordModule(std::move(name)),
      in_(std::move(in)),
      out_(std::move(out)),
      key_(std::move(key)),
      window_span_(window_span) {
  TCQ_CHECK(in_ != nullptr && out_ != nullptr && key_ != nullptr);
  TCQ_CHECK(window_span_ > 0);
}

void SortModule::FlushWindow(Timestamp upto) {
  // Move buffered tuples with timestamp < upto into the emit queue,
  // sorted by key (stable, so equal keys keep arrival order).
  std::vector<Tuple> keep;
  std::vector<Tuple> flush;
  for (Tuple& t : buffer_) {
    (t.timestamp() < upto ? flush : keep).push_back(std::move(t));
  }
  buffer_ = std::move(keep);
  std::stable_sort(flush.begin(), flush.end(),
                   [this](const Tuple& a, const Tuple& b) {
                     return key_->Eval(a) < key_->Eval(b);
                   });
  for (Tuple& t : flush) emit_queue_.push_back(std::move(t));
}

FjordModule::StepResult SortModule::Step(size_t max_tuples) {
  size_t work = 0;
  // Drain the emit queue first (respect backpressure).
  while (emit_pos_ < emit_queue_.size() && work < max_tuples) {
    if (!out_->Enqueue(emit_queue_[emit_pos_])) {
      return work > 0 ? StepResult::kDidWork : StepResult::kIdle;
    }
    ++emit_pos_;
    ++work;
  }
  if (emit_pos_ == emit_queue_.size() && emit_pos_ > 0) {
    emit_queue_.clear();
    emit_pos_ = 0;
  }

  while (work < max_tuples) {
    auto t = in_->Dequeue();
    if (!t.has_value()) {
      if (in_->Exhausted()) {
        // End of stream: flush everything.
        FlushWindow(kMaxTimestamp);
        if (emit_pos_ == emit_queue_.size()) {
          out_->Close();
          return StepResult::kDone;
        }
        return StepResult::kDidWork;  // Emit next quantum.
      }
      return work > 0 ? StepResult::kDidWork : StepResult::kIdle;
    }
    ++work;
    if (window_start_ == kMinTimestamp) window_start_ = t->timestamp();
    // Timestamp advanced past the window: flush the completed window.
    // (Subtraction form avoids overflow when window_span_ is kMaxTimestamp.)
    if (t->timestamp() - window_start_ >= window_span_) {
      FlushWindow(window_start_ + window_span_);
      window_start_ += window_span_ *
                       ((t->timestamp() - window_start_) / window_span_);
    }
    buffer_.push_back(std::move(*t));
  }
  return StepResult::kDidWork;
}

// ------------------------------------------------- TransitiveClosureModule

TransitiveClosureModule::TransitiveClosureModule(std::string name,
                                                 TupleQueuePtr in,
                                                 TupleQueuePtr out)
    : FjordModule(std::move(name)), in_(std::move(in)), out_(std::move(out)) {
  TCQ_CHECK(in_ != nullptr && out_ != nullptr);
}

void TransitiveClosureModule::AddEdge(const Value& a, const Value& b,
                                      Timestamp ts) {
  // Semi-naive: new pairs are {pred(a) ∪ a} × {succ(b) ∪ b} minus what
  // is already in the closure.
  std::vector<Value> froms{a};
  if (auto it = inverse_.find(a); it != inverse_.end()) {
    froms.insert(froms.end(), it->second.begin(), it->second.end());
  }
  std::vector<Value> tos{b};
  if (auto it = reachable_.find(b); it != reachable_.end()) {
    tos.insert(tos.end(), it->second.begin(), it->second.end());
  }
  for (const Value& f : froms) {
    for (const Value& t : tos) {
      if (f == t) continue;  // Reflexive pairs are not derived.
      auto [iter, inserted] = reachable_[f].insert(t);
      if (!inserted) continue;
      inverse_[t].insert(f);
      ++closure_pairs_;
      emit_queue_.push_back(Tuple::Make({f, t}, ts));
    }
  }
}

FjordModule::StepResult TransitiveClosureModule::Step(size_t max_tuples) {
  size_t work = 0;
  while (emit_pos_ < emit_queue_.size() && work < max_tuples) {
    if (!out_->Enqueue(emit_queue_[emit_pos_])) {
      return work > 0 ? StepResult::kDidWork : StepResult::kIdle;
    }
    ++emit_pos_;
    ++work;
  }
  if (emit_pos_ == emit_queue_.size() && emit_pos_ > 0) {
    emit_queue_.clear();
    emit_pos_ = 0;
  }

  while (work < max_tuples) {
    auto t = in_->Dequeue();
    if (!t.has_value()) {
      if (in_->Exhausted() && emit_pos_ == emit_queue_.size()) {
        out_->Close();
        return StepResult::kDone;
      }
      return work > 0 ? StepResult::kDidWork : StepResult::kIdle;
    }
    TCQ_DCHECK(t->arity() >= 2) << "edges are (from, to) tuples";
    ++work;
    AddEdge(t->cell(0), t->cell(1), t->timestamp());
  }
  return StepResult::kDidWork;
}

}  // namespace tcq
