#ifndef TCQ_MODULES_GROUPED_FILTER_H_
#define TCQ_MODULES_GROUPED_FILTER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/bitset.h"
#include "expr/ast.h"
#include "tuple/value.h"

namespace tcq {

using QueryId = uint32_t;

/// A grouped filter (CACQ, §3.1): an index over the single-variable boolean
/// factors that many continuous queries place on ONE attribute.
///
/// Registrations are held in cheap O(1)-mutation raw form (hash buckets
/// for =/!=, an unsorted range list) and compiled on demand into an
/// interval-bitmap index: the distinct range constants c_1 < ... < c_k
/// split the value domain into 2k+1 elementary regions
///   (-inf,c_1) [c_1] (c_1,c_2) [c_2] ... [c_k] (c_k,+inf)
/// and every region stores the precomputed bitset of queries whose range
/// factors all hold there. Apply is then a binary search over the k
/// bounds plus O(#queries/64) words of bitset arithmetic:
///   pass = region_pass[seg] & (no_eq | eq_full(v)) & ~ne_hit(v)
///   candidates -= has_pred - pass
/// independent of how many predicates match — the previous design walked
/// a sorted-array prefix per matching predicate (~n/2 steps per tuple at
/// n range CQs) and paid an O(n) sorted insert per registration.
///
/// The index is rebuilt lazily on the first Apply after any mutation
/// (AddPredicate / RemoveQuery), so registering n predicates costs O(n)
/// appends plus one O(k·n/64 + n log n) batch rebuild, not O(n²).
/// Region bitsets cost O(k·n/64) memory — fine for the workloads CACQ
/// shares (bound constants drawn from overlapping pools), and the
/// rebuild is where to revisit if k ever approaches n.
///
/// Thread rules: Apply is logically const but mutates the cached index
/// and scratch; a GroupedFilter must be owned by one thread at a time
/// (per-shard engines already guarantee this), same as before.
///
/// Queries may register several factors on the same attribute (e.g. the
/// range 10 < x AND x < 20); a query survives only if all of them hold.
class GroupedFilter {
 public:
  GroupedFilter() = default;

  /// Registers one boolean factor `attr op constant` for query q.
  /// Supported ops: =, !=, <, <=, >, >=. O(1) amortized; the index is
  /// marked stale and recompiled on the next Apply.
  void AddPredicate(QueryId q, BinaryOp op, Value constant);

  /// Drops every factor owned by query q (the query left the system).
  void RemoveQuery(QueryId q);

  /// Narrows `candidates` (bit per query) to those whose factors on this
  /// attribute all accept `v`. Queries with no factors here are untouched,
  /// as are candidate bits past num_queries() (mixed-width is fine).
  /// `candidates` must be sized to at least num_queries() bits.
  void Apply(const Value& v, SmallBitset* candidates) const;

  /// Convenience: the full pass-set for value v over all known queries.
  SmallBitset Matching(const Value& v) const;

  size_t num_queries() const { return totals_.size(); }
  size_t num_predicates() const { return num_predicates_; }
  bool empty() const { return num_predicates_ == 0; }

  /// Index introspection for tests: compilations performed so far,
  /// whether the next Apply will recompile, and the elementary-region
  /// count (2·#distinct-bounds + 1) of the current index.
  uint64_t rebuilds() const { return rebuilds_; }
  bool index_dirty() const { return dirty_; }
  size_t num_regions() const { return region_pass_.size(); }

 private:
  struct RangePred {
    Value constant;
    QueryId query;
    BinaryOp op;  ///< kGt / kGe / kLt / kLe.
  };

  void EnsureQuery(QueryId q);
  void RebuildIndex() const;
  /// Elementary region containing v: binary search over bounds_; region
  /// 2i+1 is the point [c_i], region 2i the open interval below c_i.
  size_t RegionOf(const Value& v) const;

  // --- Raw registrations: the source of truth, O(1) to mutate.
  std::vector<uint32_t> totals_;     ///< All factors of query q here.
  std::vector<uint32_t> ne_counts_;  ///< Of which != factors.
  std::vector<uint32_t> eq_counts_;  ///< Of which = factors.
  SmallBitset has_pred_;             ///< Queries with >=1 factor here.
  std::unordered_map<Value, std::vector<QueryId>, ValueHash> eq_;
  std::unordered_map<Value, std::vector<QueryId>, ValueHash> ne_;
  std::vector<RangePred> ranges_;  ///< Unsorted; compiled at rebuild.
  size_t num_predicates_ = 0;

  // --- Derived interval-bitmap index, recompiled lazily (mutable: Apply
  // is const; single-owner-thread discipline).
  mutable bool dirty_ = false;
  mutable uint64_t rebuilds_ = 0;
  mutable std::vector<Value> bounds_;  ///< Sorted distinct range constants.
  mutable std::vector<SmallBitset> region_pass_;  ///< 2k+1 pass-bitsets.
  mutable SmallBitset no_eq_;  ///< Queries with factors but no = factor.
  /// Value -> queries ALL of whose = factors hold there (bucket
  /// occurrence count equals eq_counts_ — a query with = factors on two
  /// distinct constants is contradictory and appears in neither list).
  mutable std::unordered_map<Value, std::vector<QueryId>, ValueHash> eq_full_;
  /// Value -> deduplicated queries with a != factor on that constant.
  mutable std::unordered_map<Value, std::vector<QueryId>, ValueHash> ne_hit_;

  // --- Apply scratch, sized at rebuild so the hot path never allocates.
  mutable SmallBitset pass_scratch_;
  mutable SmallBitset eq_scratch_;
  mutable SmallBitset fail_scratch_;

  // --- Rebuild scratch, retained across compiles so churn interleaved
  // with ingest (rebuild per tuple, the worst case) reuses capacity
  // instead of reallocating; cleared at the top of each RebuildIndex.
  struct QueryInterval {
    QueryId query;
    size_t lo, hi;
  };
  mutable std::vector<QueryInterval> intervals_scratch_;
  mutable SmallBitset has_range_scratch_;  ///< Queries with >=1 range factor.
  mutable SmallBitset sweep_scratch_;      ///< Running pass-set in the sweep.
  mutable std::vector<std::vector<QueryId>> enter_scratch_, exit_scratch_;
};

}  // namespace tcq

#endif  // TCQ_MODULES_GROUPED_FILTER_H_
