#ifndef TCQ_MODULES_GROUPED_FILTER_H_
#define TCQ_MODULES_GROUPED_FILTER_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/bitset.h"
#include "expr/ast.h"
#include "tuple/value.h"

namespace tcq {

using QueryId = uint32_t;

/// A grouped filter (CACQ, §3.1): an index over the single-variable boolean
/// factors that many continuous queries place on ONE attribute. Instead of
/// evaluating every query's predicate against every tuple (O(#queries)),
/// the index finds the satisfied predicates in O(log n + matches):
///   * equality factors live in a hash map keyed by constant,
///   * inequality factors live in sorted arrays probed by binary search,
///   * != factors pass by default and fail on a hash hit.
///
/// Queries may register several factors on the same attribute (e.g. the
/// range 10 < x AND x < 20); a query survives only if all of them hold.
class GroupedFilter {
 public:
  GroupedFilter() = default;

  /// Registers one boolean factor `attr op constant` for query q.
  /// Supported ops: =, !=, <, <=, >, >=.
  void AddPredicate(QueryId q, BinaryOp op, Value constant);

  /// Drops every factor owned by query q (the query left the system).
  void RemoveQuery(QueryId q);

  /// Narrows `candidates` (bit per query) to those whose factors on this
  /// attribute all accept `v`. Queries with no factors here are untouched.
  /// `candidates` must be sized to at least num_queries() bits.
  void Apply(const Value& v, SmallBitset* candidates) const;

  /// Convenience: the full pass-set for value v over all known queries.
  SmallBitset Matching(const Value& v) const;

  size_t num_queries() const { return totals_.size(); }
  size_t num_predicates() const { return num_predicates_; }
  bool empty() const { return num_predicates_ == 0; }

 private:
  struct BoundEntry {
    Value constant;
    QueryId query;
  };

  void EnsureQuery(QueryId q);

  // Per-query factor counts on this attribute.
  std::vector<uint32_t> totals_;    ///< All factors of query q here.
  std::vector<uint32_t> ne_counts_; ///< Of which != factors.
  SmallBitset has_pred_;            ///< Queries with >=1 factor here.
  SmallBitset ne_default_;          ///< Queries whose factors are all !=.

  // Index structures. Sorted arrays are maintained sorted by constant.
  std::unordered_map<Value, std::vector<QueryId>, ValueHash> eq_;
  std::unordered_map<Value, std::vector<QueryId>, ValueHash> ne_;
  std::vector<BoundEntry> gt_;  ///< attr > c, ascending by c.
  std::vector<BoundEntry> ge_;  ///< attr >= c, ascending by c.
  std::vector<BoundEntry> lt_;  ///< attr < c, descending by c.
  std::vector<BoundEntry> le_;  ///< attr <= c, descending by c.

  size_t num_predicates_ = 0;

  // Scratch for Apply (version-stamped to avoid O(#queries) clearing).
  mutable std::vector<int32_t> scratch_count_;
  mutable std::vector<uint64_t> scratch_stamp_;
  mutable std::vector<QueryId> touched_;
  mutable uint64_t stamp_ = 0;
  mutable SmallBitset pass_scratch_;
};

}  // namespace tcq

#endif  // TCQ_MODULES_GROUPED_FILTER_H_
