#ifndef TCQ_FLUX_REBALANCE_H_
#define TCQ_FLUX_REBALANCE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/status.h"
#include "flux/partition.h"
#include "telemetry/metrics.h"

namespace tcq {

/// The Flux controller half of online repartitioning (§2.4 of [SHCF03],
/// cited by TelegraphCQ §3): a background thread that watches the
/// exchange's load distribution — the statistic behind the
/// `tcq.shard.imbalance` gauge — and, when one shard's backlog runs away
/// from the mean, picks a (bucket, donor, recipient) move and asks the
/// engine to execute it. The *mechanism* (pause/drain/move/resume) lives
/// with the engine that owns the state (cacq/migration.cc); this class is
/// pure *policy* plus the thread that applies it, so the simulated cluster
/// and any future exchange can reuse it.
///
/// Planning is exposed as a static, side-effect-free function
/// (`PlanMove`) so the donor/recipient/bucket choice is unit-testable
/// without threads.
class RebalanceController {
 public:
  struct Options {
    /// Trigger when max backlog exceeds threshold * mean backlog (the
    /// same statistic the tcq.shard.imbalance gauge publishes as
    /// 100*max/mean).
    double imbalance_threshold = 1.75;
    /// Minimum max-shard backlog before imbalance is considered at all —
    /// an idle or near-idle exchange is never "imbalanced".
    size_t min_backlog = 64;
    /// Controller poll cadence.
    uint64_t poll_interval_ms = 5;
    /// Polls to skip after a completed migration, giving the new owner
    /// time to drain before the next decision (anti ping-pong).
    size_t cooldown_polls = 4;
  };

  /// One load observation. `shard_backlog[i]` is shard i's current input
  /// backlog (queued work); `bucket_routed[b]` is the cumulative count of
  /// tuples routed to bucket b — the controller differences consecutive
  /// observations to estimate each bucket's recent load share.
  struct Load {
    std::vector<size_t> shard_backlog;
    std::vector<uint64_t> bucket_routed;
  };

  struct Plan {
    size_t bucket;
    size_t from;
    size_t to;
  };

  using LoadFn = std::function<Load()>;
  /// Executes one migration (ShardedEngine::MigrateBucket). Runs on the
  /// controller thread; must be safe to call while data flows.
  using MigrateFn = std::function<Status(size_t bucket, size_t to_shard)>;

  /// `map` must outlive the controller and is only read (owner snapshot
  /// for planning); the MigrateFn flips it.
  RebalanceController(const PartitionMap* map, LoadFn load, MigrateFn migrate,
                      Options options);
  ~RebalanceController();  // Stops and joins the thread.

  RebalanceController(const RebalanceController&) = delete;
  RebalanceController& operator=(const RebalanceController&) = delete;

  void Start();
  /// Signals the thread and joins it. Idempotent; a migration in flight
  /// completes before the thread exits.
  void Stop();

  /// Runs one observe-plan-migrate step inline (no thread). Tests and
  /// manual drivers use this for deterministic triggering; the background
  /// thread calls exactly this. Returns the executed plan, if any.
  std::optional<Plan> PollOnce();

  uint64_t polls() const { return polls_->value(); }
  uint64_t triggered() const { return triggered_->value(); }
  uint64_t failed() const { return failed_->value(); }

  /// Pure planning: given the routing table snapshot and two consecutive
  /// load observations, decide whether to move a bucket and which one.
  ///
  /// Donor = max-backlog shard, recipient = min-backlog shard, triggered
  /// by max > threshold * mean (and max >= min_backlog). The moved bucket
  /// is the donor-owned bucket with the largest recent routed delta that
  /// still fits within half the donor-recipient load gap — moving the
  /// hottest bucket outright could just relocate the hotspot, while a
  /// bucket within the gap strictly narrows it (Flux's "move enough, not
  /// everything"). Returns nullopt when balanced, idle, or no bucket fits.
  static std::optional<Plan> PlanMove(const std::vector<size_t>& owner,
                                      const Load& now, const Load& prev,
                                      const Options& options);

 private:
  void Run();

  const PartitionMap* map_;
  LoadFn load_;
  MigrateFn migrate_;
  Options options_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool started_ = false;
  std::thread thread_;

  Load prev_;
  size_t cooldown_left_ = 0;

  Counter* polls_;
  Counter* triggered_;
  Counter* failed_;
};

}  // namespace tcq

#endif  // TCQ_FLUX_REBALANCE_H_
