#include "flux/rebalance.h"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "common/logging.h"

namespace tcq {

RebalanceController::RebalanceController(const PartitionMap* map, LoadFn load,
                                         MigrateFn migrate, Options options)
    : map_(map),
      load_(std::move(load)),
      migrate_(std::move(migrate)),
      options_(options),
      polls_(MetricRegistry::Global().GetCounter("tcq.rebalance.polls")),
      triggered_(MetricRegistry::Global().GetCounter("tcq.rebalance.triggered")),
      failed_(MetricRegistry::Global().GetCounter("tcq.rebalance.failed")) {
  TCQ_CHECK(map_ != nullptr);
  TCQ_CHECK(load_ != nullptr);
  TCQ_CHECK(migrate_ != nullptr);
}

RebalanceController::~RebalanceController() { Stop(); }

void RebalanceController::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return;
  started_ = true;
  stop_requested_ = false;
  prev_ = load_();  // First delta window starts from "now", not from zero.
  thread_ = std::thread([this] { Run(); });
}

void RebalanceController::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  started_ = false;
}

void RebalanceController::Run() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, std::chrono::milliseconds(options_.poll_interval_ms),
                   [this] { return stop_requested_; });
      if (stop_requested_) return;
    }
    PollOnce();
  }
}

std::optional<RebalanceController::Plan> RebalanceController::PollOnce() {
  TCQ_METRIC(polls_->Add());
  Load now = load_();
  std::optional<Plan> plan;
  if (cooldown_left_ > 0) {
    --cooldown_left_;
  } else {
    plan = PlanMove(map_->Owners(), now, prev_, options_);
  }
  prev_ = std::move(now);
  if (!plan) return std::nullopt;

  triggered_->Add();
  Status s = migrate_(plan->bucket, plan->to);
  if (!s.ok()) {
    // A failed or refused migration (e.g. concurrent manual Rebalance holds
    // the migration lock) is not fatal — log, back off, and re-plan from
    // fresh observations next poll.
    failed_->Add();
    TCQ_LOG_EVERY_N(Warn, 32)
        << "rebalance: migration of bucket " << plan->bucket << " -> shard "
        << plan->to << " failed: " << s.message();
    return std::nullopt;
  }
  cooldown_left_ = options_.cooldown_polls;
  return plan;
}

std::optional<RebalanceController::Plan> RebalanceController::PlanMove(
    const std::vector<size_t>& owner, const Load& now, const Load& prev,
    const Options& options) {
  const size_t shards = now.shard_backlog.size();
  if (shards < 2) return std::nullopt;

  size_t donor = 0, recipient = 0;
  size_t total = 0;
  for (size_t i = 0; i < shards; ++i) {
    total += now.shard_backlog[i];
    if (now.shard_backlog[i] > now.shard_backlog[donor]) donor = i;
    if (now.shard_backlog[i] < now.shard_backlog[recipient]) recipient = i;
  }
  const size_t max_backlog = now.shard_backlog[donor];
  if (max_backlog < options.min_backlog) return std::nullopt;  // Idle-ish.
  const double mean = static_cast<double>(total) / static_cast<double>(shards);
  if (mean <= 0.0 ||
      static_cast<double>(max_backlog) <= options.imbalance_threshold * mean) {
    return std::nullopt;  // Within tolerance.
  }

  // Estimate each donor bucket's recent load share from the routed-counter
  // delta since the previous observation. The donor/recipient *backlog* gap
  // bounds how much load is worth shifting: moving more than half the gap
  // would overshoot and invite a move straight back.
  if (now.bucket_routed.size() != owner.size() ||
      prev.bucket_routed.size() != owner.size()) {
    return std::nullopt;  // Malformed observation; skip this round.
  }
  uint64_t donor_recent = 0, recipient_recent = 0;
  for (size_t b = 0; b < owner.size(); ++b) {
    const uint64_t delta = now.bucket_routed[b] >= prev.bucket_routed[b]
                               ? now.bucket_routed[b] - prev.bucket_routed[b]
                               : 0;
    if (owner[b] == donor) donor_recent += delta;
    if (owner[b] == recipient) recipient_recent += delta;
  }
  if (donor_recent <= recipient_recent) {
    // Backlog skew without a recent-rate skew (e.g. a stale backlog from a
    // burst already past) — no bucket move would help; let it drain.
    return std::nullopt;
  }
  const uint64_t target = (donor_recent - recipient_recent) / 2;

  // Largest donor bucket that fits the target. If every donor bucket
  // overshoots (one mega-hot bucket), fall back to the *smallest* active
  // donor bucket: shedding even a cold-ish bucket frees the donor a little
  // and never makes the recipient the new maximum by more than the donor
  // already was.
  size_t best = SIZE_MAX, best_delta = 0;
  size_t smallest_active = SIZE_MAX;
  uint64_t smallest_delta = UINT64_MAX;
  for (size_t b = 0; b < owner.size(); ++b) {
    if (owner[b] != donor) continue;
    const uint64_t delta = now.bucket_routed[b] >= prev.bucket_routed[b]
                               ? now.bucket_routed[b] - prev.bucket_routed[b]
                               : 0;
    if (delta == 0) continue;  // Quiet bucket; moving it shifts nothing.
    if (delta <= target && (best == SIZE_MAX || delta > best_delta)) {
      best = b;
      best_delta = delta;
    }
    if (delta < smallest_delta) {
      smallest_active = b;
      smallest_delta = delta;
    }
  }
  if (best == SIZE_MAX) best = smallest_active;
  if (best == SIZE_MAX) return std::nullopt;  // Donor has no active buckets.
  return Plan{best, donor, recipient};
}

}  // namespace tcq
