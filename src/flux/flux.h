#ifndef TCQ_FLUX_FLUX_H_
#define TCQ_FLUX_FLUX_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "flux/partition.h"
#include "telemetry/metrics.h"
#include "tuple/tuple.h"
#include "tuple/value.h"

namespace tcq {

/// Flux (§2.4, [SHCF03]): a fault-tolerant, load-balancing exchange for
/// partitioned continuous dataflows, reproduced on a simulated
/// shared-nothing cluster. Each "node" is a simulated machine with an
/// input queue, bounded per-tick processing capacity, and the partition
/// state of a keyed streaming aggregate (the canonical stateful consumer).
///
/// The simulation advances in discrete ticks (deterministic):
///   * Feed() routes tuples through the exchange to nodes by the
///     partition routing table (in-flight copies are retained until the
///     owning node processes them, enabling replay after a failure);
///   * Tick() lets every live node drain up to `capacity` tuples, then
///     runs the Flux controller, which (a) detects load imbalance and
///     repartitions online — moving a partition's state with a
///     pause/buffer/resume protocol that costs transfer ticks — and
///     (b) applies replica maintenance for fault tolerance;
///   * KillNode() injects a machine fault. Replicated partitions fail
///     over to their standby copy and in-flight tuples are replayed;
///     unreplicated state is lost (observable in the final aggregate).
class FluxCluster {
 public:
  struct Options {
    size_t num_nodes = 4;
    size_t num_partitions = 64;
    /// Tuples each node can process per tick.
    size_t capacity_per_tick = 128;
    /// State entries transferable per tick during a partition move.
    size_t transfer_rate = 256;
    bool enable_repartitioning = true;
    /// Trigger a move when max node backlog exceeds threshold * average.
    double imbalance_threshold = 1.75;
    /// Minimum backlog before imbalance is even considered.
    size_t min_backlog_for_move = 64;
    /// Ticks to wait after a move completes before considering another —
    /// gives the new owner time to drain, preventing move ping-pong.
    size_t move_cooldown_ticks = 8;
    /// Process-pair replication: each partition keeps a standby copy on
    /// the next live node; updates are mirrored (costing capacity).
    bool enable_replication = false;
    /// Capacity cost multiplier for mirrored updates.
    double replication_cost = 0.5;
    /// Initial partition -> node routing table; empty = round-robin
    /// (partition p on node p % num_nodes). Experiments use this to start
    /// from a deliberately bad partitioning.
    std::vector<size_t> initial_owner;
  };

  /// The aggregate each node maintains per key: COUNT and SUM of cell 1,
  /// grouped by cell 0 of the fed tuples.
  struct KeyState {
    int64_t count = 0;
    double sum = 0.0;
  };

  FluxCluster();
  explicit FluxCluster(Options options);

  FluxCluster(const FluxCluster&) = delete;
  FluxCluster& operator=(const FluxCluster&) = delete;

  /// Routes a batch into the cluster (cell 0 = group key, cell 1 = value).
  void Feed(const TupleVector& batch);

  /// Advances simulated time by one tick. Returns tuples processed.
  size_t Tick();

  /// Runs ticks until all queues drain (or `max_ticks`). Returns ticks run.
  size_t Run(size_t max_ticks = 1u << 20);

  /// Injects a machine fault at the next tick boundary.
  Status KillNode(size_t node);

  /// Merged aggregate across all live partition state (for verification).
  std::map<Value, KeyState> Snapshot() const;

  // -- Introspection ------------------------------------------------------
  // Cluster counters are telemetry primitives (relaxed atomics) mirrored
  // into the process-wide `tcq.flux.*` registry aggregates; the accessors
  // below are thin views reading through the Counter's implicit
  // conversion, so existing call sites are unchanged.
  struct NodeStats {
    bool alive = true;
    size_t backlog = 0;          ///< Queued tuples right now.
    uint64_t processed = 0;      ///< Total tuples applied.
    size_t partitions_owned = 0;
  };
  NodeStats node_stats(size_t node) const;
  size_t num_nodes() const { return nodes_.size(); }

  uint64_t ticks() const { return ticks_; }
  uint64_t moves() const { return moves_; }          ///< Partition moves.
  uint64_t moved_entries() const { return moved_entries_; }
  uint64_t replayed() const { return replayed_; }    ///< Tuples replayed.
  uint64_t lost_updates() const { return lost_updates_; }
  uint64_t dropped_no_owner() const { return dropped_no_owner_; }
  /// Max over nodes of backlog, and total backlog.
  size_t max_backlog() const;
  size_t total_backlog() const;

 private:
  struct Pending {
    Tuple tuple;
    uint64_t id;
  };

  struct Node {
    bool alive = true;
    std::deque<Pending> queue;
    Counter processed;
    /// partition -> key -> state (primary copies).
    std::map<size_t, std::unordered_map<Value, KeyState, ValueHash>> state;
    /// partition -> standby copies mirrored from the primary owner.
    std::map<size_t, std::unordered_map<Value, KeyState, ValueHash>> replicas;
  };

  struct Move {
    size_t partition;
    size_t from;
    size_t to;
    size_t entries_left;
  };

  size_t PartitionOf(const Value& key) const;
  void RouteTuple(Pending p);
  void Apply(Node* node, size_t partition, const Tuple& t);
  void Controller();
  void StartMove(size_t partition, size_t from, size_t to);
  void AdvanceMove();
  void FailoverNode(size_t node);
  size_t ReplicaNodeOf(size_t partition) const;

  Options options_;
  std::vector<Node> nodes_;
  /// key -> partition -> node, through the same PartitionMap abstraction
  /// the real-threads sharded exchange routes with (one repartitioning
  /// abstraction; partition == bucket, node == shard).
  PartitionMap map_;
  /// Tuples buffered while their partition is mid-move.
  std::map<size_t, std::deque<Pending>> move_buffer_;
  std::unique_ptr<Move> active_move_;

  /// Exchange-side in-flight retention: id -> tuple copies not yet
  /// processed by their owner (replayed on failover).
  std::unordered_map<uint64_t, Tuple> in_flight_;
  uint64_t next_id_ = 1;

  Counter ticks_;
  Counter moves_;
  uint64_t cooldown_until_ = 0;
  Counter moved_entries_;
  Counter replayed_;
  Counter lost_updates_;
  Counter dropped_no_owner_;
};

}  // namespace tcq

#endif  // TCQ_FLUX_FLUX_H_
