#include "flux/flux.h"

#include <algorithm>

#include "common/logging.h"
#include "flux/partition.h"

namespace tcq {

#ifndef TCQ_METRICS_DISABLED
namespace {

/// Process-wide exchange telemetry aggregated across all simulated
/// clusters (DESIGN.md §10); per-cluster detail stays on the accessors.
struct ClusterMetrics {
  Counter* ticks;
  Counter* processed;
  Counter* moves;
  Counter* moved_entries;
  Counter* replayed;
  Counter* lost_updates;
  Counter* dropped_no_owner;

  static ClusterMetrics& Get() {
    static ClusterMetrics* m = [] {
      MetricRegistry& reg = MetricRegistry::Global();
      auto* agg = new ClusterMetrics();
      agg->ticks = reg.GetCounter("tcq.flux.ticks");
      agg->processed = reg.GetCounter("tcq.flux.processed");
      agg->moves = reg.GetCounter("tcq.flux.moves");
      agg->moved_entries = reg.GetCounter("tcq.flux.moved_entries");
      agg->replayed = reg.GetCounter("tcq.flux.replayed");
      agg->lost_updates = reg.GetCounter("tcq.flux.lost_updates");
      agg->dropped_no_owner = reg.GetCounter("tcq.flux.dropped_no_owner");
      return agg;
    }();
    return *m;
  }
};

}  // namespace
#endif  // TCQ_METRICS_DISABLED

FluxCluster::FluxCluster() : FluxCluster(Options()) {}

FluxCluster::FluxCluster(Options options)
    : options_(options),
      // PartitionMap validates initial_owner size/bounds itself; the
      // round-robin default matches the old owner_ initialization.
      map_(options.num_partitions == 0 ? 1 : options.num_partitions,
           options.num_nodes == 0 ? 1 : options.num_nodes) {
  TCQ_CHECK(options_.num_nodes > 0);
  TCQ_CHECK(options_.num_partitions > 0);
  TCQ_CHECK(options_.capacity_per_tick > 0);
  nodes_.resize(options_.num_nodes);
  if (!options_.initial_owner.empty()) {
    TCQ_CHECK(options_.initial_owner.size() == options_.num_partitions);
    for (size_t p = 0; p < options_.num_partitions; ++p) {
      map_.SetOwner(p, options_.initial_owner[p]);
    }
  }
}

size_t FluxCluster::PartitionOf(const Value& key) const {
  // Shared with the real-threads sharded CACQ exchange (flux/partition.h):
  // both route by the same PartitionMap hash, so simulation results carry
  // over (and no per-call throwaway partitioner is built).
  return map_.BucketOf(key);
}

size_t FluxCluster::ReplicaNodeOf(size_t partition) const {
  // Standby lives at the first LIVE node past the primary (process-pair
  // style). Skipping dead nodes keeps every partition replicated as long
  // as two nodes survive; without the skip, a partition whose designated
  // standby slot is a corpse silently runs unreplicated and a later
  // primary failure loses acked state.
  const size_t owner = map_.ShardOf(partition);
  for (size_t i = 1; i < nodes_.size(); ++i) {
    const size_t cand = (owner + i) % nodes_.size();
    if (nodes_[cand].alive) return cand;
  }
  return owner;  // Sole survivor: replication degenerates to none.
}

void FluxCluster::RouteTuple(Pending p) {
  const size_t partition = PartitionOf(p.tuple.cell(0));
  // Partitions mid-move buffer at the exchange (the Flux state-movement
  // protocol's pause phase) and drain to the new owner on completion.
  if (auto it = move_buffer_.find(partition); it != move_buffer_.end()) {
    it->second.push_back(std::move(p));
    return;
  }
  const size_t node = map_.ShardOf(partition);
  if (!nodes_[node].alive) {
    // No live owner (unrecovered failure): the update is lost.
    ++dropped_no_owner_;
    TCQ_METRIC(ClusterMetrics::Get().dropped_no_owner->Add(1));
    in_flight_.erase(p.id);
    return;
  }
  in_flight_.emplace(p.id, p.tuple);
  nodes_[node].queue.push_back(std::move(p));
}

void FluxCluster::Feed(const TupleVector& batch) {
  for (const Tuple& t : batch) {
    TCQ_DCHECK(t.arity() >= 2) << "Flux feed expects (key, value) tuples";
    RouteTuple(Pending{t, next_id_++});
  }
}

void FluxCluster::Apply(Node* node, size_t partition, const Tuple& t) {
  const Value& key = t.cell(0);
  KeyState& ks = node->state[partition][key];
  ks.count += 1;
  ks.sum += t.cell(1).AsDouble();
  if (options_.enable_replication) {
    const size_t rn = ReplicaNodeOf(partition);
    if (nodes_[rn].alive && &nodes_[rn] != node) {
      KeyState& rs = nodes_[rn].replicas[partition][key];
      rs.count += 1;
      rs.sum += t.cell(1).AsDouble();
    }
  }
}

size_t FluxCluster::Tick() {
  ++ticks_;
  size_t processed_total = 0;
  for (Node& node : nodes_) {
    if (!node.alive) continue;
    // Mirrored updates consume extra capacity: the replication QoS knob.
    size_t budget = options_.capacity_per_tick;
    if (options_.enable_replication) {
      budget = static_cast<size_t>(static_cast<double>(budget) /
                                   (1.0 + options_.replication_cost));
      if (budget == 0) budget = 1;
    }
    while (budget > 0 && !node.queue.empty()) {
      Pending p = std::move(node.queue.front());
      node.queue.pop_front();
      const size_t partition = PartitionOf(p.tuple.cell(0));
      Apply(&node, partition, p.tuple);
      in_flight_.erase(p.id);
      ++node.processed;
      ++processed_total;
      --budget;
    }
  }
  AdvanceMove();
  Controller();
#ifndef TCQ_METRICS_DISABLED
  ClusterMetrics::Get().ticks->Add(1);
  ClusterMetrics::Get().processed->Add(processed_total);
#endif
  return processed_total;
}

size_t FluxCluster::Run(size_t max_ticks) {
  size_t t = 0;
  while (t < max_ticks) {
    ++t;
    Tick();
    if (total_backlog() == 0 && active_move_ == nullptr &&
        move_buffer_.empty()) {
      break;
    }
  }
  return t;
}

void FluxCluster::Controller() {
  if (!options_.enable_repartitioning || active_move_ != nullptr) return;
  if (ticks_ < cooldown_until_) return;

  // Compute backlog distribution over live nodes.
  size_t alive = 0;
  size_t total = 0;
  size_t max_backlog = 0, max_node = 0;
  size_t min_backlog = SIZE_MAX, min_node = 0;
  for (size_t n = 0; n < nodes_.size(); ++n) {
    if (!nodes_[n].alive) continue;
    ++alive;
    const size_t b = nodes_[n].queue.size();
    total += b;
    if (b > max_backlog) {
      max_backlog = b;
      max_node = n;
    }
    if (b < min_backlog) {
      min_backlog = b;
      min_node = n;
    }
  }
  if (alive < 2 || max_backlog < options_.min_backlog_for_move) return;
  const double avg =
      static_cast<double>(total) / static_cast<double>(alive);
  if (static_cast<double>(max_backlog) <
      options_.imbalance_threshold * std::max(avg, 1.0)) {
    return;
  }

  // Pick the overloaded node's hottest partition by queued share, but not
  // one responsible for (almost) all its load if it owns only that one —
  // moving the sole hot partition to the idlest node still helps.
  std::map<size_t, size_t> queued_per_partition;
  for (const Pending& p : nodes_[max_node].queue) {
    ++queued_per_partition[PartitionOf(p.tuple.cell(0))];
  }
  size_t best_partition = SIZE_MAX, best_count = 0;
  for (const auto& [partition, count] : queued_per_partition) {
    if (map_.ShardOf(partition) == max_node && count > best_count) {
      best_count = count;
      best_partition = partition;
    }
  }
  if (best_partition == SIZE_MAX) return;
  StartMove(best_partition, max_node, min_node);
}

void FluxCluster::StartMove(size_t partition, size_t from, size_t to) {
  TCQ_DCHECK(map_.ShardOf(partition) == from);
  move_buffer_.emplace(partition, std::deque<Pending>());
  Node& src = nodes_[from];
  // Pull this partition's queued-but-unprocessed tuples into the buffer so
  // they are applied by the new owner after the state lands.
  std::deque<Pending> keep;
  for (Pending& p : src.queue) {
    if (PartitionOf(p.tuple.cell(0)) == partition) {
      move_buffer_[partition].push_back(std::move(p));
    } else {
      keep.push_back(std::move(p));
    }
  }
  src.queue = std::move(keep);

  const size_t entries = src.state.count(partition) != 0
                             ? src.state[partition].size()
                             : 0;
  active_move_ =
      std::make_unique<Move>(Move{partition, from, to, entries});
}

void FluxCluster::AdvanceMove() {
  if (active_move_ == nullptr) return;
  Move& mv = *active_move_;
  // Transfer proceeds at transfer_rate entries per tick.
  mv.entries_left -= std::min(mv.entries_left, options_.transfer_rate);
  if (mv.entries_left > 0) return;

  // Completion: install the state at the new owner, flip the routing
  // table, re-home the standby copy, and release buffered tuples.
  Node& src = nodes_[mv.from];
  Node& dst = nodes_[mv.to];
  if (src.alive && src.state.count(mv.partition) != 0) {
    moved_entries_ += src.state[mv.partition].size();
    TCQ_METRIC(ClusterMetrics::Get().moved_entries->Add(
        src.state[mv.partition].size()));
    dst.state[mv.partition] = std::move(src.state[mv.partition]);
    src.state.erase(mv.partition);
  }
  map_.SetOwner(mv.partition, mv.to);
  ++moves_;
  TCQ_METRIC(ClusterMetrics::Get().moves->Add(1));
  if (options_.enable_replication) {
    // Re-home the standby: drop the old copy, mirror the fresh primary.
    for (Node& n : nodes_) n.replicas.erase(mv.partition);
    const size_t rn = ReplicaNodeOf(mv.partition);
    if (nodes_[rn].alive && rn != mv.to &&
        dst.state.count(mv.partition) != 0) {
      nodes_[rn].replicas[mv.partition] = dst.state[mv.partition];
    }
  }

  std::deque<Pending> buffered = std::move(move_buffer_[mv.partition]);
  move_buffer_.erase(mv.partition);
  active_move_ = nullptr;
  cooldown_until_ = ticks_ + options_.move_cooldown_ticks;
  for (Pending& p : buffered) {
    in_flight_.erase(p.id);  // RouteTuple re-registers.
    RouteTuple(std::move(p));
  }
}

Status FluxCluster::KillNode(size_t node) {
  if (node >= nodes_.size()) return Status::OutOfRange("no such node");
  Node& victim = nodes_[node];
  if (!victim.alive) return Status::FailedPrecondition("node already dead");
  victim.alive = false;

  // A move touching the victim aborts; its buffered tuples reroute after
  // failover below.
  std::deque<Pending> stranded;
  if (active_move_ != nullptr &&
      (active_move_->from == node || active_move_->to == node)) {
    stranded = std::move(move_buffer_[active_move_->partition]);
    move_buffer_.erase(active_move_->partition);
    active_move_ = nullptr;
  }

  FailoverNode(node);

  // Replay: the victim's queued (unprocessed) tuples are still in the
  // exchange's in-flight store; reroute them to the new owners.
  std::deque<Pending> queued = std::move(victim.queue);
  victim.queue.clear();
  for (Pending& p : queued) {
    ++replayed_;
    TCQ_METRIC(ClusterMetrics::Get().replayed->Add(1));
    in_flight_.erase(p.id);
    RouteTuple(std::move(p));
  }
  for (Pending& p : stranded) {
    in_flight_.erase(p.id);
    RouteTuple(std::move(p));
  }
  return Status::OK();
}

void FluxCluster::FailoverNode(size_t node) {
  // Choose new owners for every partition the victim owned.
  for (size_t p = 0; p < map_.num_buckets(); ++p) {
    if (map_.ShardOf(p) != node) continue;
    // The standby, if any, lives where ReplicaNodeOf placed it: the first
    // live node past the (now dead) primary.
    const size_t standby = ReplicaNodeOf(p);

    if (options_.enable_replication && standby != node &&
        nodes_[standby].alive && nodes_[standby].replicas.count(p) != 0) {
      // Promote the standby copy: no state loss.
      nodes_[standby].state[p] = std::move(nodes_[standby].replicas[p]);
      nodes_[standby].replicas.erase(p);
      map_.SetOwner(p, standby);
    } else {
      // No replica: the partition restarts empty on some live node.
      size_t chosen = SIZE_MAX;
      for (size_t n = 1; n < nodes_.size(); ++n) {
        const size_t cand = (node + n) % nodes_.size();
        if (nodes_[cand].alive) {
          chosen = cand;
          break;
        }
      }
      if (nodes_[node].state.count(p) != 0) {
        for (const auto& [key, ks] : nodes_[node].state[p]) {
          lost_updates_ += static_cast<uint64_t>(ks.count);
          TCQ_METRIC(ClusterMetrics::Get().lost_updates->Add(
              static_cast<uint64_t>(ks.count)));
        }
      }
      if (chosen != SIZE_MAX) map_.SetOwner(p, chosen);
    }
    nodes_[node].state.erase(p);
  }
  // Standby copies the victim held for other primaries are gone; re-mirror
  // them from the live primaries.
  nodes_[node].replicas.clear();
  if (options_.enable_replication) {
    for (size_t p = 0; p < map_.num_buckets(); ++p) {
      const size_t rn = ReplicaNodeOf(p);
      Node& owner_node = nodes_[map_.ShardOf(p)];
      if (rn != map_.ShardOf(p) && nodes_[rn].alive &&
          nodes_[rn].replicas.count(p) == 0 &&
          owner_node.state.count(p) != 0) {
        nodes_[rn].replicas[p] = owner_node.state[p];
      }
    }
  }
}

std::map<Value, FluxCluster::KeyState> FluxCluster::Snapshot() const {
  std::map<Value, KeyState> merged;
  for (const Node& node : nodes_) {
    if (!node.alive) continue;
    for (const auto& [partition, keys] : node.state) {
      if (map_.ShardOf(partition) != static_cast<size_t>(&node - nodes_.data())) {
        continue;  // Stale copy (shouldn't happen; defensive).
      }
      for (const auto& [key, ks] : keys) {
        KeyState& m = merged[key];
        m.count += ks.count;
        m.sum += ks.sum;
      }
    }
  }
  return merged;
}

FluxCluster::NodeStats FluxCluster::node_stats(size_t node) const {
  NodeStats s;
  const Node& n = nodes_[node];
  s.alive = n.alive;
  s.backlog = n.queue.size();
  s.processed = n.processed;
  for (size_t p = 0; p < map_.num_buckets(); ++p) {
    if (map_.ShardOf(p) == node) ++s.partitions_owned;
  }
  return s;
}

size_t FluxCluster::max_backlog() const {
  size_t m = 0;
  for (const Node& n : nodes_) m = std::max(m, n.queue.size());
  return m;
}

size_t FluxCluster::total_backlog() const {
  size_t t = 0;
  for (const Node& n : nodes_) t += n.queue.size();
  return t;
}

}  // namespace tcq
