#ifndef TCQ_FLUX_CHANGELOG_H_
#define TCQ_FLUX_CHANGELOG_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "tuple/tuple.h"

namespace tcq {

/// Process-pair replication state for one shard of a Flux exchange (§5 of
/// the paper; the decorated-automaton/changelog shape): a *snapshot* of
/// the primary's engine state as of some log position, plus the
/// *changelog* of every data batch routed to the primary after that
/// position. The standby recovers by installing the snapshot and
/// replaying the changelog tail — together they reconstruct exactly the
/// primary's state at its last task boundary.
///
/// Log sequence numbers (LSNs) are assigned here, at append time, and
/// must be assigned in the primary's queue order: the exchange calls
/// Append under its per-partition enqueue serialization, so record order
/// in the log always equals task order in the shard's input queue.
///
/// Snapshot is a caller-defined payload (the cacq EngineCheckpoint); this
/// layer only tracks its log position and validity, keeping flux below
/// cacq in the dependency order.
template <typename Snapshot>
class ShardReplica {
 public:
  struct Record {
    uint64_t lsn = 0;
    size_t source = 0;
    std::vector<Tuple> tuples;
    /// Consistency lane the batch was injected under (DESIGN.md §15);
    /// replay must reuse it so the standby seeds the same query lineage.
    IngressLane lane = IngressLane::kAll;
  };

  /// Everything a failover needs, copied atomically: the newest valid
  /// snapshot (if any) and every record after its floor, in LSN order.
  struct RecoveryPlan {
    bool has_snapshot = false;
    Snapshot snapshot{};
    uint64_t snapshot_floor = 0;  ///< All records <= floor are in snapshot.
    std::vector<Record> tail;
  };

  /// Cross-thread-safe counters for telemetry / SnapshotMetrics rows.
  struct Stats {
    uint64_t next_lsn = 0;       ///< LSN of the last appended record.
    uint64_t snapshot_floor = 0;
    size_t log_records = 0;
    size_t log_bytes = 0;        ///< Approximate payload of live records.
    uint64_t checkpoints = 0;    ///< Snapshots accepted.
    uint64_t torn_rejected = 0;  ///< Snapshots rejected as torn.
  };

  /// Logs one data batch bound for the primary; returns its LSN (>= 1).
  /// Must be called in the shard's queue order (the exchange tee holds
  /// its per-partition lock across Append + Enqueue).
  uint64_t Append(size_t source, std::vector<Tuple> tuples,
                  IngressLane lane = IngressLane::kAll) {
    std::lock_guard<std::mutex> lock(mu_);
    Record rec;
    rec.lsn = ++next_lsn_;
    rec.source = source;
    rec.tuples = std::move(tuples);
    rec.lane = lane;
    log_bytes_ += ApproxBytes(rec);
    log_.push_back(std::move(rec));
    return next_lsn_;
  }

  /// Installs a snapshot covering every record with lsn <= `floor` and
  /// truncates those records. A torn snapshot (`valid` false — the
  /// checkpointer died or fault injection corrupted it) is REJECTED: the
  /// previous snapshot and the full changelog stay, so recovery falls
  /// back one checkpoint rather than losing state. Returns acceptance.
  bool StoreSnapshot(uint64_t floor, Snapshot snap, bool valid) {
    std::lock_guard<std::mutex> lock(mu_);
    TCQ_CHECK(floor <= next_lsn_) << "snapshot floor beyond the log head";
    if (!valid) {
      ++torn_rejected_;
      return false;
    }
    TCQ_CHECK(floor >= snapshot_floor_) << "snapshot floor moved backwards";
    snapshot_ = std::move(snap);
    snapshot_floor_ = floor;
    has_snapshot_ = true;
    ++checkpoints_;
    TruncateLocked(floor);
    return true;
  }

  RecoveryPlan MakeRecoveryPlan() const {
    std::lock_guard<std::mutex> lock(mu_);
    RecoveryPlan plan;
    plan.has_snapshot = has_snapshot_;
    if (has_snapshot_) plan.snapshot = snapshot_;
    plan.snapshot_floor = snapshot_floor_;
    plan.tail.assign(log_.begin(), log_.end());
    return plan;
  }

  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    Stats s;
    s.next_lsn = next_lsn_;
    s.snapshot_floor = snapshot_floor_;
    s.log_records = log_.size();
    s.log_bytes = log_bytes_;
    s.checkpoints = checkpoints_;
    s.torn_rejected = torn_rejected_;
    return s;
  }

 private:
  static size_t ApproxBytes(const Record& rec) {
    size_t bytes = sizeof(Record);
    for (const Tuple& t : rec.tuples) {
      bytes += sizeof(Tuple) + t.arity() * sizeof(Value);
    }
    return bytes;
  }

  void TruncateLocked(uint64_t floor) {
    while (!log_.empty() && log_.front().lsn <= floor) {
      log_bytes_ -= ApproxBytes(log_.front());
      log_.pop_front();
    }
  }

  mutable std::mutex mu_;
  uint64_t next_lsn_ = 0;
  std::deque<Record> log_;
  size_t log_bytes_ = 0;
  Snapshot snapshot_{};
  uint64_t snapshot_floor_ = 0;
  bool has_snapshot_ = false;
  uint64_t checkpoints_ = 0;
  uint64_t torn_rejected_ = 0;
};

/// The replication controller for an N-shard exchange: one ShardReplica
/// per shard plus the checkpoint cadence policy (every
/// `checkpoint_interval` applied tasks the primary re-snapshots, hydra
/// style, and the changelog tail resets). A fault hook lets tests tear a
/// checkpoint in flight.
template <typename Snapshot>
class ReplicationController {
 public:
  struct Options {
    /// Applied data tasks between snapshots. Smaller = shorter replay
    /// tails and faster failover, at more copy cost per task.
    uint64_t checkpoint_interval = 32;
  };

  /// Fault hook, called with (shard, snapshot) before the snapshot is
  /// stored; returning false marks it torn (the replica rejects it).
  using SnapshotFault = std::function<bool(size_t, const Snapshot&)>;

  ReplicationController(size_t num_shards, Options options)
      : options_(options), replicas_(num_shards) {
    for (auto& r : replicas_) r = std::make_unique<ShardReplica<Snapshot>>();
  }

  ShardReplica<Snapshot>& replica(size_t shard) { return *replicas_[shard]; }
  const ShardReplica<Snapshot>& replica(size_t shard) const {
    return *replicas_[shard];
  }
  size_t num_shards() const { return replicas_.size(); }
  const Options& options() const { return options_; }

  /// True when the cadence calls for a fresh snapshot: the changelog tail
  /// behind `applied_lsn` has outgrown the interval.
  bool ShouldCheckpoint(size_t shard, uint64_t applied_lsn) const {
    const auto s = replicas_[shard]->stats();
    return applied_lsn >= s.snapshot_floor + options_.checkpoint_interval;
  }

  /// Runs the snapshot through the fault hook (if any) and stores it.
  /// Returns whether the replica accepted it.
  bool StoreSnapshot(size_t shard, uint64_t floor, Snapshot snap,
                     bool valid = true) {
    if (valid && fault_) valid = fault_(shard, snap);
    return replicas_[shard]->StoreSnapshot(floor, std::move(snap), valid);
  }

  void SetSnapshotFault(SnapshotFault fault) { fault_ = std::move(fault); }

 private:
  Options options_;
  std::vector<std::unique_ptr<ShardReplica<Snapshot>>> replicas_;
  SnapshotFault fault_;
};

}  // namespace tcq

#endif  // TCQ_FLUX_CHANGELOG_H_
