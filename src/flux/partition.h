#ifndef TCQ_FLUX_PARTITION_H_
#define TCQ_FLUX_PARTITION_H_

#include <cstddef>

#include "common/logging.h"
#include "tuple/tuple.h"
#include "tuple/value.h"

namespace tcq {

/// The Flux exchange's content-sensitive routing policy ([SHCF03] §2:
/// "route each tuple by a hash of its partitioning attribute"), extracted
/// so the simulated cluster (flux.cc) and the real-threads sharded CACQ
/// exchange (cacq/sharded_engine.cc) partition identically: same key ->
/// same partition, for any consumer count.
///
/// Value::Hash() is consistent with Value::Compare across numeric types
/// (1 and 1.0 hash together because they compare equal), so an equi-join
/// whose two sides carry the same key lands both sides on the same shard
/// even when one side is int and the other double. NULL keys hash like any
/// other value — they all collapse onto one partition, which matches SQL
/// join semantics (NULL joins nothing, so colocating them is harmless).
class HashPartitioner {
 public:
  explicit HashPartitioner(size_t num_partitions)
      : num_partitions_(num_partitions) {
    TCQ_CHECK(num_partitions_ > 0);
  }

  size_t num_partitions() const { return num_partitions_; }

  size_t PartitionOf(const Value& key) const {
    return key.Hash() % num_partitions_;
  }

  /// Partition of a tuple by one of its columns.
  size_t PartitionOf(const Tuple& t, size_t key_column) const {
    return PartitionOf(t.cell(key_column));
  }

 private:
  size_t num_partitions_;
};

}  // namespace tcq

#endif  // TCQ_FLUX_PARTITION_H_
