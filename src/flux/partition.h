#ifndef TCQ_FLUX_PARTITION_H_
#define TCQ_FLUX_PARTITION_H_

#include <atomic>
#include <cstddef>
#include <vector>

#include "common/logging.h"
#include "tuple/tuple.h"
#include "tuple/value.h"

namespace tcq {

/// The Flux exchange's content-sensitive routing policy ([SHCF03] §2:
/// "route each tuple by a hash of its partitioning attribute"), extracted
/// so the simulated cluster (flux.cc) and the real-threads sharded CACQ
/// exchange (cacq/sharded_engine.cc) partition identically: same key ->
/// same partition, for any consumer count.
///
/// Value::Hash() is consistent with Value::Compare across numeric types
/// (1 and 1.0 hash together because they compare equal), so an equi-join
/// whose two sides carry the same key lands both sides on the same shard
/// even when one side is int and the other double. NULL keys hash like any
/// other value — they all collapse onto one partition, which matches SQL
/// join semantics (NULL joins nothing, so colocating them is harmless).
class HashPartitioner {
 public:
  explicit HashPartitioner(size_t num_partitions)
      : num_partitions_(num_partitions) {
    TCQ_CHECK(num_partitions_ > 0);
  }

  size_t num_partitions() const { return num_partitions_; }

  size_t PartitionOf(const Value& key) const {
    return key.Hash() % num_partitions_;
  }

  /// Partition of a tuple by one of its columns.
  size_t PartitionOf(const Tuple& t, size_t key_column) const {
    return PartitionOf(t.cell(key_column));
  }

 private:
  size_t num_partitions_;
};

/// The one repartitioning abstraction (Flux §2.4): a fixed number of hash
/// buckets (key -> bucket through the HashPartitioner policy above) plus a
/// mutable bucket -> shard lookup table. Static `hash % N` pins every key
/// to a shard forever; indirecting through buckets lets a controller move
/// a bucket's state and flip one table entry while the pipeline runs —
/// keys never change *bucket*, so per-key FIFO survives any sequence of
/// ownership flips that drains in between.
///
/// Both exchanges route through this type: the simulated FluxCluster
/// (partition == bucket, node == shard) and the real-threads ShardedEngine
/// exchange. Concurrency: BucketOf/ShardOf are safe from any thread
/// (owner entries are atomics); SetOwner publishes with release semantics
/// so a reader that observes the flip also observes the state movement
/// the caller sequenced before it. Coordinating *when* a flip is safe
/// (pause/drain/move/resume) is the caller's protocol, not this table's.
class PartitionMap {
 public:
  /// Buckets start round-robin: bucket b owned by shard b % num_shards.
  PartitionMap(size_t num_buckets, size_t num_shards)
      : hasher_(num_buckets), num_shards_(num_shards), owner_(num_buckets) {
    TCQ_CHECK(num_shards_ > 0);
    for (size_t b = 0; b < num_buckets; ++b) {
      owner_[b].store(b % num_shards_, std::memory_order_relaxed);
    }
  }

  /// Explicit initial ownership (experiments start from deliberately bad
  /// partitionings). `initial_owner.size()` must equal `num_buckets`.
  PartitionMap(size_t num_buckets, size_t num_shards,
               const std::vector<size_t>& initial_owner)
      : PartitionMap(num_buckets, num_shards) {
    TCQ_CHECK(initial_owner.size() == num_buckets);
    for (size_t b = 0; b < num_buckets; ++b) SetOwner(b, initial_owner[b]);
  }

  PartitionMap(const PartitionMap&) = delete;
  PartitionMap& operator=(const PartitionMap&) = delete;

  size_t num_buckets() const { return hasher_.num_partitions(); }
  size_t num_shards() const { return num_shards_; }

  /// Key -> bucket: pure hashing, immutable for the map's lifetime.
  size_t BucketOf(const Value& key) const { return hasher_.PartitionOf(key); }
  size_t BucketOf(const Tuple& t, size_t key_column) const {
    return hasher_.PartitionOf(t, key_column);
  }

  /// Bucket -> shard: the mutable routing table.
  size_t ShardOf(size_t bucket) const {
    TCQ_DCHECK(bucket < owner_.size());
    return owner_[bucket].load(std::memory_order_acquire);
  }
  size_t ShardOf(const Value& key) const { return ShardOf(BucketOf(key)); }
  size_t ShardOf(const Tuple& t, size_t key_column) const {
    return ShardOf(BucketOf(t, key_column));
  }

  /// Flips one bucket's ownership. The caller must have moved (or be about
  /// to rebuild) the bucket's state per the migration protocol.
  void SetOwner(size_t bucket, size_t shard) {
    TCQ_CHECK(bucket < owner_.size() && shard < num_shards_);
    owner_[bucket].store(shard, std::memory_order_release);
  }

  /// Snapshot of the full routing table (telemetry / controller planning).
  std::vector<size_t> Owners() const {
    std::vector<size_t> out(owner_.size());
    for (size_t b = 0; b < owner_.size(); ++b) out[b] = ShardOf(b);
    return out;
  }

  std::vector<size_t> BucketsOwnedBy(size_t shard) const {
    std::vector<size_t> out;
    for (size_t b = 0; b < owner_.size(); ++b) {
      if (ShardOf(b) == shard) out.push_back(b);
    }
    return out;
  }

 private:
  HashPartitioner hasher_;
  size_t num_shards_;
  std::vector<std::atomic<size_t>> owner_;  ///< bucket -> shard.
};

}  // namespace tcq

#endif  // TCQ_FLUX_PARTITION_H_
