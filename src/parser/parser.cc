#include "parser/parser.h"

#include <sstream>

#include "parser/lexer.h"

namespace tcq {

namespace {

/// Recursive-descent parser over the token stream. Expression contexts:
/// in the SELECT/WHERE clauses bare identifiers are columns; inside the
/// for-loop construct they are loop variables.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ParsedQuery> Parse() {
    ParsedQuery query;
    TCQ_RETURN_NOT_OK(Expect("SELECT"));
    TCQ_RETURN_NOT_OK(ParseSelectList(&query));
    TCQ_RETURN_NOT_OK(Expect("FROM"));
    TCQ_RETURN_NOT_OK(ParseFromList(&query));
    if (PeekKeyword("WHERE")) {
      Advance();
      TCQ_ASSIGN_OR_RETURN(query.where, ParseExpr());
    }
    if (PeekKeyword("GROUP")) {
      Advance();
      TCQ_RETURN_NOT_OK(Expect("BY"));
      while (true) {
        TCQ_ASSIGN_OR_RETURN(ExprPtr key, ParseExpr());
        query.group_by.push_back(std::move(key));
        if (Peek().kind != TokenKind::kComma) break;
        Advance();
      }
    }
    if (PeekKeyword("FOR")) {
      ForLoopSpec spec;
      TCQ_RETURN_NOT_OK(ParseForLoop(&spec));
      query.window = std::move(spec);
    }
    // Optional trailing semicolon.
    if (Peek().kind == TokenKind::kSemicolon) Advance();
    if (Peek().kind != TokenKind::kEnd) {
      return Err("unexpected trailing input");
    }
    return query;
  }

 private:
  // ---- Token helpers --------------------------------------------------
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool PeekKeyword(const char* kw) const { return Peek().IsKeyword(kw); }

  Status Err(const std::string& msg) const {
    return Status::ParseError(msg + " (near offset " +
                              std::to_string(Peek().offset) + ")");
  }

  Status Expect(const char* keyword) {
    if (!PeekKeyword(keyword)) {
      return Err(std::string("expected ") + keyword);
    }
    Advance();
    return Status::OK();
  }

  Status ExpectToken(TokenKind kind, const char* what) {
    if (Peek().kind != kind) return Err(std::string("expected ") + what);
    Advance();
    return Status::OK();
  }

  static bool IsReserved(const Token& t) {
    for (const char* kw :
         {"SELECT", "FROM", "WHERE", "AS", "AND", "OR", "NOT", "FOR",
          "WINDOWIS", "TRUE", "FALSE", "NULL", "GROUP", "BY"}) {
      if (t.IsKeyword(kw)) return true;
    }
    return false;
  }

  // ---- Clauses ---------------------------------------------------------
  Status ParseSelectList(ParsedQuery* query) {
    while (true) {
      SelectItem item;
      if (Peek().kind == TokenKind::kStar) {
        Advance();
        item.star = true;
      } else if (Peek().kind == TokenKind::kIdent &&
                 Peek(1).kind == TokenKind::kDot &&
                 Peek(2).kind == TokenKind::kStar) {
        item.star = true;
        item.star_qualifier = Advance().text;
        Advance();  // '.'
        Advance();  // '*'
      } else {
        TCQ_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (PeekKeyword("AS")) {
          Advance();
          if (Peek().kind != TokenKind::kIdent) return Err("expected alias");
          item.alias = Advance().text;
        }
      }
      query->select.push_back(std::move(item));
      if (Peek().kind != TokenKind::kComma) break;
      Advance();
    }
    if (query->select.empty()) return Err("empty select list");
    return Status::OK();
  }

  Status ParseFromList(ParsedQuery* query) {
    while (true) {
      if (Peek().kind != TokenKind::kIdent || IsReserved(Peek())) {
        return Err("expected stream or table name");
      }
      TableRef ref;
      ref.name = Advance().text;
      // Dotted stream names (`FROM tcq.metrics`): the introspection
      // namespace lives alongside user streams in the catalog, so a
      // source name is `ident (. ident)*`.
      while (Peek().kind == TokenKind::kDot &&
             Peek(1).kind == TokenKind::kIdent && !IsReserved(Peek(1))) {
        Advance();  // '.'
        ref.name += "." + Advance().text;
      }
      if (PeekKeyword("AS")) {
        Advance();
        if (Peek().kind != TokenKind::kIdent) return Err("expected alias");
        ref.alias = Advance().text;
      } else if (Peek().kind == TokenKind::kIdent && !IsReserved(Peek())) {
        ref.alias = Advance().text;  // Implicit alias: `Stream c1`.
      }
      query->from.push_back(std::move(ref));
      if (Peek().kind != TokenKind::kComma) break;
      Advance();
    }
    return Status::OK();
  }

  // for (t = init; cond; step) { WindowIs(S, l, r); ... }
  Status ParseForLoop(ForLoopSpec* spec) {
    TCQ_RETURN_NOT_OK(Expect("FOR"));
    TCQ_RETURN_NOT_OK(ExpectToken(TokenKind::kLParen, "'('"));
    in_window_context_ = true;

    // Init: `t = expr` or empty.
    if (Peek().kind != TokenKind::kSemicolon) {
      if (Peek().kind != TokenKind::kIdent) {
        in_window_context_ = false;
        return Err("expected loop variable in for-loop init");
      }
      spec->var = Advance().text;
      if (Peek().kind != TokenKind::kEq) {
        in_window_context_ = false;
        return Err("expected '=' in for-loop init");
      }
      Advance();
      auto init = ParseExpr();
      if (!init.ok()) {
        in_window_context_ = false;
        return init.status();
      }
      spec->init = *init;
    }
    TCQ_RETURN_NOT_OK(CloseOnError(
        ExpectToken(TokenKind::kSemicolon, "';' after for-loop init")));

    // Condition (may be empty).
    if (Peek().kind != TokenKind::kSemicolon) {
      auto cond = ParseExpr();
      if (!cond.ok()) {
        in_window_context_ = false;
        return cond.status();
      }
      spec->condition = *cond;
    }
    TCQ_RETURN_NOT_OK(CloseOnError(
        ExpectToken(TokenKind::kSemicolon, "';' after for-loop condition")));

    // Step: `t = expr`, `t += e`, `t -= e`, `t++`, or empty.
    if (Peek().kind != TokenKind::kRParen) {
      if (Peek().kind != TokenKind::kIdent) {
        in_window_context_ = false;
        return Err("expected loop variable in for-loop step");
      }
      const std::string var = Advance().text;
      if (var != spec->var && spec->init != nullptr) {
        in_window_context_ = false;
        return Err("for-loop step must update variable '" + spec->var + "'");
      }
      if (spec->init == nullptr) spec->var = var;
      ExprPtr var_expr = Expr::Variable(var);
      switch (Peek().kind) {
        case TokenKind::kEq: {
          Advance();
          auto e = ParseExpr();
          if (!e.ok()) {
            in_window_context_ = false;
            return e.status();
          }
          spec->step = *e;
          break;
        }
        case TokenKind::kPlusEq: {
          Advance();
          auto e = ParseExpr();
          if (!e.ok()) {
            in_window_context_ = false;
            return e.status();
          }
          spec->step = Expr::Binary(BinaryOp::kAdd, var_expr, *e);
          break;
        }
        case TokenKind::kMinusEq: {
          Advance();
          auto e = ParseExpr();
          if (!e.ok()) {
            in_window_context_ = false;
            return e.status();
          }
          spec->step = Expr::Binary(BinaryOp::kSub, var_expr, *e);
          break;
        }
        case TokenKind::kPlusPlus:
          Advance();
          spec->step = Expr::Binary(BinaryOp::kAdd, var_expr,
                                    Expr::Literal(Value::Int64(1)));
          break;
        default:
          in_window_context_ = false;
          return Err("expected '=', '+=', '-=' or '++' in for-loop step");
      }
    }
    TCQ_RETURN_NOT_OK(
        CloseOnError(ExpectToken(TokenKind::kRParen, "')'")));
    TCQ_RETURN_NOT_OK(
        CloseOnError(ExpectToken(TokenKind::kLBrace, "'{'")));

    while (true) {
      if (Peek().kind == TokenKind::kRBrace) break;
      if (!PeekKeyword("WINDOWIS")) {
        in_window_context_ = false;
        return Err("expected WindowIs clause");
      }
      Advance();
      TCQ_RETURN_NOT_OK(
          CloseOnError(ExpectToken(TokenKind::kLParen, "'('")));
      if (Peek().kind != TokenKind::kIdent) {
        in_window_context_ = false;
        return Err("expected stream name in WindowIs");
      }
      WindowIsClause clause;
      clause.stream = Advance().text;
      TCQ_RETURN_NOT_OK(
          CloseOnError(ExpectToken(TokenKind::kComma, "','")));
      auto left = ParseExpr();
      if (!left.ok()) {
        in_window_context_ = false;
        return left.status();
      }
      clause.left_end = *left;
      TCQ_RETURN_NOT_OK(
          CloseOnError(ExpectToken(TokenKind::kComma, "','")));
      auto right = ParseExpr();
      if (!right.ok()) {
        in_window_context_ = false;
        return right.status();
      }
      clause.right_end = *right;
      TCQ_RETURN_NOT_OK(
          CloseOnError(ExpectToken(TokenKind::kRParen, "')'")));
      TCQ_RETURN_NOT_OK(
          CloseOnError(ExpectToken(TokenKind::kSemicolon, "';'")));
      spec->windows.push_back(std::move(clause));
    }
    TCQ_RETURN_NOT_OK(
        CloseOnError(ExpectToken(TokenKind::kRBrace, "'}'")));
    in_window_context_ = false;
    return Status::OK();
  }

  /// Clears the window-context flag when propagating an error.
  Status CloseOnError(Status s) {
    if (!s.ok()) in_window_context_ = false;
    return s;
  }

  // ---- Expressions ------------------------------------------------------
  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    TCQ_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (PeekKeyword("OR")) {
      Advance();
      TCQ_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      left = Expr::Binary(BinaryOp::kOr, left, right);
    }
    return left;
  }

  Result<ExprPtr> ParseAnd() {
    TCQ_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
    while (PeekKeyword("AND")) {
      Advance();
      TCQ_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
      left = Expr::Binary(BinaryOp::kAnd, left, right);
    }
    return left;
  }

  Result<ExprPtr> ParseNot() {
    if (PeekKeyword("NOT")) {
      Advance();
      TCQ_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      return Expr::Unary(UnaryOp::kNot, operand);
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    TCQ_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
    BinaryOp op;
    switch (Peek().kind) {
      case TokenKind::kEq:
        op = BinaryOp::kEq;
        break;
      case TokenKind::kNe:
        op = BinaryOp::kNe;
        break;
      case TokenKind::kLt:
        op = BinaryOp::kLt;
        break;
      case TokenKind::kLe:
        op = BinaryOp::kLe;
        break;
      case TokenKind::kGt:
        op = BinaryOp::kGt;
        break;
      case TokenKind::kGe:
        op = BinaryOp::kGe;
        break;
      default:
        return left;
    }
    Advance();
    TCQ_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
    return Expr::Binary(op, left, right);
  }

  Result<ExprPtr> ParseAdditive() {
    TCQ_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
    while (Peek().kind == TokenKind::kPlus ||
           Peek().kind == TokenKind::kMinus) {
      const BinaryOp op = Advance().kind == TokenKind::kPlus ? BinaryOp::kAdd
                                                             : BinaryOp::kSub;
      TCQ_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
      left = Expr::Binary(op, left, right);
    }
    return left;
  }

  Result<ExprPtr> ParseMultiplicative() {
    TCQ_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
    while (Peek().kind == TokenKind::kStar ||
           Peek().kind == TokenKind::kSlash ||
           Peek().kind == TokenKind::kPercent) {
      BinaryOp op;
      switch (Advance().kind) {
        case TokenKind::kStar:
          op = BinaryOp::kMul;
          break;
        case TokenKind::kSlash:
          op = BinaryOp::kDiv;
          break;
        default:
          op = BinaryOp::kMod;
          break;
      }
      TCQ_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
      left = Expr::Binary(op, left, right);
    }
    return left;
  }

  Result<ExprPtr> ParseUnary() {
    if (Peek().kind == TokenKind::kMinus) {
      Advance();
      TCQ_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      // Fold -literal for readable ASTs.
      if (operand->kind() == ExprKind::kLiteral) {
        const Value& v = operand->literal();
        if (v.type() == ValueType::kInt64) {
          return Expr::Literal(Value::Int64(-v.int64_value()));
        }
        if (v.type() == ValueType::kDouble) {
          return Expr::Literal(Value::Double(-v.double_value()));
        }
      }
      return Expr::Unary(UnaryOp::kNeg, operand);
    }
    return ParsePrimary();
  }

  static std::optional<AggKind> AggregateKindOf(const Token& t) {
    if (t.IsKeyword("COUNT")) return AggKind::kCount;
    if (t.IsKeyword("SUM")) return AggKind::kSum;
    if (t.IsKeyword("AVG")) return AggKind::kAvg;
    if (t.IsKeyword("MIN")) return AggKind::kMin;
    if (t.IsKeyword("MAX")) return AggKind::kMax;
    return std::nullopt;
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kInt: {
        const int64_t v = Advance().int_value;
        return Expr::Literal(Value::Int64(v));
      }
      case TokenKind::kFloat: {
        const double v = Advance().float_value;
        return Expr::Literal(Value::Double(v));
      }
      case TokenKind::kString: {
        std::string v = Advance().text;
        return Expr::Literal(Value::String(std::move(v)));
      }
      case TokenKind::kLParen: {
        Advance();
        TCQ_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
        TCQ_RETURN_NOT_OK(ExpectToken(TokenKind::kRParen, "')'"));
        return inner;
      }
      case TokenKind::kIdent: {
        if (t.IsKeyword("TRUE")) {
          Advance();
          return Expr::Literal(Value::Bool(true));
        }
        if (t.IsKeyword("FALSE")) {
          Advance();
          return Expr::Literal(Value::Bool(false));
        }
        if (t.IsKeyword("NULL")) {
          Advance();
          return Expr::Literal(Value::Null());
        }
        // Aggregate call?
        if (auto agg = AggregateKindOf(t);
            agg.has_value() && Peek(1).kind == TokenKind::kLParen) {
          Advance();  // Name.
          Advance();  // '('.
          if (Peek().kind == TokenKind::kStar) {
            Advance();
            TCQ_RETURN_NOT_OK(ExpectToken(TokenKind::kRParen, "')'"));
            if (*agg != AggKind::kCount) {
              return Err("only COUNT accepts '*'");
            }
            return Expr::CountStar();
          }
          TCQ_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
          TCQ_RETURN_NOT_OK(ExpectToken(TokenKind::kRParen, "')'"));
          return Expr::Aggregate(*agg, arg);
        }
        if (IsReserved(t)) return Err("unexpected keyword " + t.text);
        // Identifier, possibly qualified: ident | ident.ident.
        std::string name = Advance().text;
        if (Peek().kind == TokenKind::kDot &&
            Peek(1).kind == TokenKind::kIdent) {
          Advance();
          name += "." + Advance().text;
          return Expr::Column(name);  // Qualified: always a column.
        }
        if (in_window_context_) return Expr::Variable(name);
        return Expr::Column(name);
      }
      default:
        return Err("expected expression");
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  bool in_window_context_ = false;
};

}  // namespace

std::string ParsedQuery::ToString() const {
  std::ostringstream os;
  os << "SELECT ";
  for (size_t i = 0; i < select.size(); ++i) {
    if (i > 0) os << ", ";
    const SelectItem& item = select[i];
    if (item.star) {
      os << (item.star_qualifier.empty() ? "*" : item.star_qualifier + ".*");
    } else {
      os << item.expr->ToString();
      if (!item.alias.empty()) os << " AS " << item.alias;
    }
  }
  os << " FROM ";
  for (size_t i = 0; i < from.size(); ++i) {
    if (i > 0) os << ", ";
    os << from[i].name;
    if (!from[i].alias.empty()) os << " AS " << from[i].alias;
  }
  if (where != nullptr) os << " WHERE " << where->ToString();
  if (window.has_value()) {
    os << " for(...){" << window->windows.size() << " WindowIs}";
  }
  return os.str();
}

Result<ParsedQuery> ParseQuery(const std::string& input) {
  TCQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(input));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace tcq
