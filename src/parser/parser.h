#ifndef TCQ_PARSER_PARSER_H_
#define TCQ_PARSER_PARSER_H_

#include <optional>
#include <string>
#include <vector>

#include "expr/ast.h"
#include "window/window.h"

namespace tcq {

/// One SELECT-list entry. Either a star (optionally qualified, as in the
/// paper's `SELECT c2.*`) or an expression with an optional alias.
struct SelectItem {
  bool star = false;
  std::string star_qualifier;  ///< "c2" for `c2.*`; "" for bare `*`.
  ExprPtr expr;                ///< Null when star.
  std::string alias;           ///< Output column name; "" = derive.
};

/// A FROM-clause source with optional alias:
/// `ClosingStockPrices as c1`.
struct TableRef {
  std::string name;
  std::string alias;  ///< Defaults to name when empty.

  const std::string& EffectiveAlias() const {
    return alias.empty() ? name : alias;
  }
};

/// The parsed form of a TelegraphCQ query: standard SELECT-FROM-WHERE plus
/// the optional for-loop window clause of §4.1.1.
struct ParsedQuery {
  std::vector<SelectItem> select;
  std::vector<TableRef> from;
  ExprPtr where;  ///< Null when absent.
  std::vector<ExprPtr> group_by;
  std::optional<ForLoopSpec> window;

  std::string ToString() const;
};

/// Parses one query. Identifiers inside the for-loop are loop variables
/// (`t`, `ST`); identifiers elsewhere are column references. Keywords are
/// case-insensitive. Comparison accepts both `=` and `==`.
Result<ParsedQuery> ParseQuery(const std::string& input);

}  // namespace tcq

#endif  // TCQ_PARSER_PARSER_H_
