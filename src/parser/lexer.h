#ifndef TCQ_PARSER_LEXER_H_
#define TCQ_PARSER_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace tcq {

enum class TokenKind : uint8_t {
  kEnd,
  kIdent,      ///< Bare identifier (may be a keyword; parser decides).
  kInt,        ///< Integer literal.
  kFloat,      ///< Floating literal.
  kString,     ///< 'single quoted'.
  // Punctuation / operators.
  kLParen,     // (
  kRParen,     // )
  kLBrace,     // {
  kRBrace,     // }
  kComma,      // ,
  kSemicolon,  // ;
  kDot,        // .
  kStar,       // *
  kPlus,       // +
  kMinus,      // -
  kSlash,      // /
  kPercent,    // %
  kEq,         // = or ==
  kNe,         // != or <>
  kLt,         // <
  kLe,         // <=
  kGt,         // >
  kGe,         // >=
  kPlusEq,     // +=
  kMinusEq,    // -=
  kPlusPlus,   // ++
  kMinusMinus, // --
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;     ///< Raw text (identifier/operator spelling).
  int64_t int_value = 0;
  double float_value = 0.0;
  size_t offset = 0;    ///< Byte offset in the input, for error messages.

  /// Case-insensitive keyword check for identifier tokens.
  bool IsKeyword(const char* keyword) const;
};

/// Tokenizes a TelegraphCQ query string (SQL plus the for-loop/WindowIs
/// window construct of §4.1.1). Comments (`-- ...`) run to end of line.
Result<std::vector<Token>> Lex(const std::string& input);

}  // namespace tcq

#endif  // TCQ_PARSER_LEXER_H_
