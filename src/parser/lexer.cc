#include "parser/lexer.h"

#include <cctype>
#include <cstdlib>

namespace tcq {

bool Token::IsKeyword(const char* keyword) const {
  if (kind != TokenKind::kIdent) return false;
  const char* p = keyword;
  size_t i = 0;
  for (; *p != '\0' && i < text.size(); ++p, ++i) {
    if (std::toupper(static_cast<unsigned char>(text[i])) !=
        std::toupper(static_cast<unsigned char>(*p))) {
      return false;
    }
  }
  return *p == '\0' && i == text.size();
}

Result<std::vector<Token>> Lex(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();

  auto push = [&](TokenKind kind, size_t start, size_t len) {
    Token t;
    t.kind = kind;
    t.text = input.substr(start, len);
    t.offset = start;
    tokens.push_back(std::move(t));
  };

  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    // Identifier / keyword.
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '_')) {
        ++i;
      }
      push(TokenKind::kIdent, start, i - start);
      continue;
    }
    // Number.
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      if (i + 1 < n && input[i] == '.' &&
          std::isdigit(static_cast<unsigned char>(input[i + 1]))) {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
          ++i;
        }
      }
      Token t;
      t.offset = start;
      t.text = input.substr(start, i - start);
      if (is_float) {
        t.kind = TokenKind::kFloat;
        t.float_value = std::strtod(t.text.c_str(), nullptr);
      } else {
        t.kind = TokenKind::kInt;
        t.int_value = std::strtoll(t.text.c_str(), nullptr, 10);
      }
      tokens.push_back(std::move(t));
      continue;
    }
    // String literal.
    if (c == '\'') {
      size_t start = ++i;
      std::string value;
      while (i < n) {
        if (input[i] == '\'') {
          if (i + 1 < n && input[i + 1] == '\'') {  // Escaped quote.
            value += '\'';
            i += 2;
            continue;
          }
          break;
        }
        value += input[i++];
      }
      if (i >= n) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start - 1));
      }
      ++i;  // Closing quote.
      Token t;
      t.kind = TokenKind::kString;
      t.text = std::move(value);
      t.offset = start - 1;
      tokens.push_back(std::move(t));
      continue;
    }
    // Operators and punctuation.
    auto two = [&](char a, char b) {
      return c == a && i + 1 < n && input[i + 1] == b;
    };
    if (two('=', '=')) {
      push(TokenKind::kEq, i, 2);
      i += 2;
    } else if (two('!', '=')) {
      push(TokenKind::kNe, i, 2);
      i += 2;
    } else if (two('<', '>')) {
      push(TokenKind::kNe, i, 2);
      i += 2;
    } else if (two('<', '=')) {
      push(TokenKind::kLe, i, 2);
      i += 2;
    } else if (two('>', '=')) {
      push(TokenKind::kGe, i, 2);
      i += 2;
    } else if (two('+', '=')) {
      push(TokenKind::kPlusEq, i, 2);
      i += 2;
    } else if (two('-', '=')) {
      push(TokenKind::kMinusEq, i, 2);
      i += 2;
    } else if (two('+', '+')) {
      push(TokenKind::kPlusPlus, i, 2);
      i += 2;
    } else if (two('-', '-')) {
      push(TokenKind::kMinusMinus, i, 2);
      i += 2;
    } else {
      TokenKind kind;
      switch (c) {
        case '(':
          kind = TokenKind::kLParen;
          break;
        case ')':
          kind = TokenKind::kRParen;
          break;
        case '{':
          kind = TokenKind::kLBrace;
          break;
        case '}':
          kind = TokenKind::kRBrace;
          break;
        case ',':
          kind = TokenKind::kComma;
          break;
        case ';':
          kind = TokenKind::kSemicolon;
          break;
        case '.':
          kind = TokenKind::kDot;
          break;
        case '*':
          kind = TokenKind::kStar;
          break;
        case '+':
          kind = TokenKind::kPlus;
          break;
        case '-':
          kind = TokenKind::kMinus;
          break;
        case '/':
          kind = TokenKind::kSlash;
          break;
        case '%':
          kind = TokenKind::kPercent;
          break;
        case '=':
          kind = TokenKind::kEq;
          break;
        case '<':
          kind = TokenKind::kLt;
          break;
        case '>':
          kind = TokenKind::kGt;
          break;
        case '!':
          return Status::ParseError("stray '!' at offset " +
                                    std::to_string(i));
        default:
          return Status::ParseError(std::string("unexpected character '") +
                                    c + "' at offset " + std::to_string(i));
      }
      push(kind, i, 1);
      ++i;
    }
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace tcq
