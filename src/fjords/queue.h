#ifndef TCQ_FJORDS_QUEUE_H_
#define TCQ_FJORDS_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>

#include "common/logging.h"

namespace tcq {

/// Blocking behaviour of one end of a Fjord queue (§2.3 of the paper).
enum class QueueEnd {
  kBlocking,     ///< The call waits (producer for space, consumer for data).
  kNonBlocking,  ///< The call returns immediately, reporting failure.
};

/// One fault decision for a single queue operation, drawn by a fault hook
/// (see QueueFaultHooks). Production queues never see these; the testing
/// FaultInjector uses them to emulate an uncertain world at either end of
/// a Fjord edge — lossy wrappers, slow consumers, reordering transports.
struct QueueFaultDecision {
  enum class Action {
    kNone,     ///< Operation proceeds normally.
    kDrop,     ///< Enqueue: element silently discarded (caller sees success).
               ///< Dequeue: element discarded; the next one is returned.
    kDelay,    ///< Enqueue: element held back and released after `arg`
               ///< later enqueue operations (Close releases all).
               ///< Dequeue (non-blocking only): pretend the queue is empty.
    kReorder,  ///< Enqueue: insert at offset `arg` instead of the back.
               ///< Dequeue: remove from offset `arg` instead of the front.
  };
  Action action = Action::kNone;
  /// kReorder: position offset (taken modulo the legal range).
  /// kDelay on enqueue: number of later enqueues to hold the element back.
  size_t arg = 0;
};

/// Fault hooks consulted under the queue lock, once per operation that
/// would otherwise succeed. Unset hooks mean no faults. Hooks must be
/// cheap and thread-safe: concurrent producers/consumers reach them while
/// holding the queue mutex, but distinct queues may share one hook object.
struct QueueFaultHooks {
  std::function<QueueFaultDecision()> on_enqueue;
  std::function<QueueFaultDecision()> on_dequeue;
};

/// Configuration of a Fjord queue. The paper's three named flavors:
///  * pull-queue:     blocking enqueue + blocking dequeue
///  * push-queue:     non-blocking enqueue + non-blocking dequeue
///  * Exchange:       non-blocking enqueue + blocking dequeue [Graf93]
struct QueueOptions {
  size_t capacity = 1024;
  QueueEnd enqueue = QueueEnd::kBlocking;
  QueueEnd dequeue = QueueEnd::kBlocking;
  /// When true, a non-blocking enqueue on a full queue drops the oldest
  /// element instead of failing — a simple load-shedding knob for QoS
  /// experiments (§4.3 "deciding what work to drop").
  bool drop_oldest_when_full = false;
  /// Optional fault injection (testing only; see QueueFaultHooks).
  std::shared_ptr<QueueFaultHooks> faults;
};

/// A bounded MPMC queue connecting a producer module to a consumer module.
/// Fjords let plans mix push and pull edges so that operators can be written
/// agnostic to whether their inputs are streamed or static.
///
/// End-of-stream: the producer calls Close(); consumers then drain the
/// remaining elements and observe closed() + empty.
template <typename T>
class FjordQueue {
 public:
  explicit FjordQueue(QueueOptions options = {}) : options_(options) {
    TCQ_CHECK(options_.capacity > 0) << "queue capacity must be positive";
  }

  FjordQueue(const FjordQueue&) = delete;
  FjordQueue& operator=(const FjordQueue&) = delete;

  const QueueOptions& options() const { return options_; }

  /// Inserts an element according to the configured enqueue mode.
  /// Returns false only when the element was not inserted: the queue is
  /// closed, or it is full in non-blocking mode (without drop_oldest).
  ///
  /// Racing Close(): the two calls serialize on the queue mutex. An
  /// Enqueue that wins the race inserts normally (consumers drain it);
  /// one that loses — including a blocking producer woken by Close —
  /// returns false with the element NOT inserted. Elements are never
  /// silently dropped by this race: a true return means the element is
  /// (or was) observable by consumers, a false return means it never was.
  bool Enqueue(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    if (closed_) return false;
    if (items_.size() >= options_.capacity) {
      if (options_.enqueue == QueueEnd::kNonBlocking) {
        if (!options_.drop_oldest_when_full) return false;
        items_.pop_front();
        ++dropped_;
      } else {
        not_full_.wait(lock, [&] {
          return items_.size() < options_.capacity || closed_;
        });
        if (closed_) return false;
      }
    }
    size_t added = 0;
    // Age the held-back elements first — "held for N later enqueues"
    // counts THIS enqueue, so an element delayed now must survive at
    // least until the next one. Expired elements release at the back.
    // (Releases ignore capacity: a transient overshoot by the number of
    // delayed elements is an accepted injection artifact.)
    for (auto it = delayed_.begin(); it != delayed_.end();) {
      if (--it->countdown == 0) {
        items_.push_back(std::move(it->item));
        ++added;
        it = delayed_.erase(it);
      } else {
        ++it;
      }
    }
    QueueFaultDecision fault;
    if (options_.faults != nullptr && options_.faults->on_enqueue) {
      fault = options_.faults->on_enqueue();
    }
    switch (fault.action) {
      case QueueFaultDecision::Action::kDrop:
        // The producer believes the element was delivered.
        ++fault_drops_;
        break;
      case QueueFaultDecision::Action::kDelay:
        delayed_.push_back(
            Delayed{std::move(item), fault.arg == 0 ? 1 : fault.arg});
        break;
      case QueueFaultDecision::Action::kReorder:
        items_.insert(items_.begin() +
                          static_cast<ptrdiff_t>(fault.arg %
                                                 (items_.size() + 1)),
                      std::move(item));
        ++added;
        break;
      case QueueFaultDecision::Action::kNone:
        items_.push_back(std::move(item));
        ++added;
        break;
    }
    lock.unlock();
    if (added > 1) {
      not_empty_.notify_all();
    } else if (added == 1) {
      not_empty_.notify_one();
    }
    return true;
  }

  /// Removes the next element according to the configured dequeue mode.
  /// Returns nullopt when no element is available: queue empty in
  /// non-blocking mode, or closed and fully drained in blocking mode.
  std::optional<T> Dequeue() {
    std::unique_lock<std::mutex> lock(mu_);
    std::optional<T> out;
    size_t removed = 0;
    for (;;) {
      if (items_.empty()) {
        if (options_.dequeue == QueueEnd::kNonBlocking) break;
        not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
        if (items_.empty()) break;  // Closed and drained.
      }
      QueueFaultDecision fault;
      if (options_.faults != nullptr && options_.faults->on_dequeue) {
        fault = options_.faults->on_dequeue();
      }
      if (fault.action == QueueFaultDecision::Action::kDrop) {
        items_.pop_front();
        ++fault_drops_;
        ++removed;
        continue;  // The consumer transparently gets the next element.
      }
      if (fault.action == QueueFaultDecision::Action::kDelay &&
          options_.dequeue == QueueEnd::kNonBlocking) {
        break;  // Pretend empty. (Blocking mode ignores dequeue delays:
                // the contract promises an element once one is present.)
      }
      size_t idx = 0;
      if (fault.action == QueueFaultDecision::Action::kReorder) {
        idx = fault.arg % items_.size();
      }
      out = std::move(items_[idx]);
      items_.erase(items_.begin() + static_cast<ptrdiff_t>(idx));
      ++removed;
      break;
    }
    lock.unlock();
    for (; removed > 0; --removed) not_full_.notify_one();
    return out;
  }

  /// Non-blocking peek at emptiness (racy by nature; for scheduling hints).
  bool Empty() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.empty();
  }

  size_t Size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  /// Elements discarded by the drop_oldest_when_full policy.
  size_t DroppedCount() const {
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_;
  }

  /// Elements discarded by injected kDrop faults (either end).
  size_t FaultDrops() const {
    std::lock_guard<std::mutex> lock(mu_);
    return fault_drops_;
  }

  /// Elements currently held back by injected kDelay faults.
  size_t DelayedCount() const {
    std::lock_guard<std::mutex> lock(mu_);
    return delayed_.size();
  }

  /// Marks end-of-stream. Wakes all blocked producers and consumers.
  /// Releases every delayed element first, so an injected delay is a
  /// delay — never a loss — over the life of the stream.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (Delayed& d : delayed_) items_.push_back(std::move(d.item));
      delayed_.clear();
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  /// True once the stream is finished: closed and drained.
  bool Exhausted() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_ && items_.empty();
  }

 private:
  struct Delayed {
    T item;
    size_t countdown;  ///< Enqueue operations left before release.
  };

  const QueueOptions options_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  std::deque<Delayed> delayed_;
  size_t dropped_ = 0;
  size_t fault_drops_ = 0;
  bool closed_ = false;
};

/// Convenience constructors for the paper's three queue flavors.
inline QueueOptions PullQueueOptions(size_t capacity = 1024) {
  return QueueOptions{capacity, QueueEnd::kBlocking, QueueEnd::kBlocking,
                      false, nullptr};
}
inline QueueOptions PushQueueOptions(size_t capacity = 1024) {
  return QueueOptions{capacity, QueueEnd::kNonBlocking,
                      QueueEnd::kNonBlocking, false, nullptr};
}
inline QueueOptions ExchangeQueueOptions(size_t capacity = 1024) {
  return QueueOptions{capacity, QueueEnd::kNonBlocking, QueueEnd::kBlocking,
                      false, nullptr};
}

}  // namespace tcq

#endif  // TCQ_FJORDS_QUEUE_H_
