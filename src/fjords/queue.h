#ifndef TCQ_FJORDS_QUEUE_H_
#define TCQ_FJORDS_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/logging.h"
#include "telemetry/metrics.h"

namespace tcq {

namespace queue_internal {
/// Process-wide Fjord-edge telemetry, aggregated across every queue
/// instance (DESIGN.md §10). Registered once; the struct caches raw
/// pointers so hot-path updates never touch the registry lock.
struct EdgeMetrics {
  Counter* enqueued;         ///< Elements accepted (any mode).
  Counter* dequeued;         ///< Elements handed to consumers.
  Counter* rejected;         ///< Non-blocking enqueues refused (full/closed).
  Counter* shed;             ///< Oldest elements dropped by load shedding.
  Counter* producer_blocks;  ///< Times a producer slept for space.
  Counter* consumer_blocks;  ///< Times a consumer slept for data.
  Counter* closes;           ///< Queues closed (end-of-stream markers).
  Histogram* depth;          ///< Queue length observed after each enqueue.

  static EdgeMetrics& Get() {
    static EdgeMetrics m = [] {
      MetricRegistry& r = MetricRegistry::Global();
      return EdgeMetrics{r.GetCounter("tcq.queue.enqueued"),
                         r.GetCounter("tcq.queue.dequeued"),
                         r.GetCounter("tcq.queue.rejected"),
                         r.GetCounter("tcq.queue.shed"),
                         r.GetCounter("tcq.queue.producer_blocks"),
                         r.GetCounter("tcq.queue.consumer_blocks"),
                         r.GetCounter("tcq.queue.closes"),
                         r.GetHistogram("tcq.queue.depth")};
    }();
    return m;
  }
};
}  // namespace queue_internal

/// Blocking behaviour of one end of a Fjord queue (§2.3 of the paper).
enum class QueueEnd {
  kBlocking,     ///< The call waits (producer for space, consumer for data).
  kNonBlocking,  ///< The call returns immediately, reporting failure.
};

/// One fault decision for a single queue operation, drawn by a fault hook
/// (see QueueFaultHooks). Production queues never see these; the testing
/// FaultInjector uses them to emulate an uncertain world at either end of
/// a Fjord edge — lossy wrappers, slow consumers, reordering transports.
struct QueueFaultDecision {
  enum class Action {
    kNone,     ///< Operation proceeds normally.
    kDrop,     ///< Enqueue: element silently discarded (caller sees success).
               ///< Dequeue: element discarded; the next one is returned.
    kDelay,    ///< Enqueue: element held back and released after `arg`
               ///< later enqueue operations (Close releases all).
               ///< Dequeue (non-blocking only): pretend the queue is empty.
    kReorder,  ///< Enqueue: insert at offset `arg` instead of the back.
               ///< Dequeue: remove from offset `arg` instead of the front.
  };
  Action action = Action::kNone;
  /// kReorder: position offset (taken modulo the legal range).
  /// kDelay on enqueue: number of later enqueues to hold the element back.
  size_t arg = 0;
};

/// Fault hooks consulted under the queue lock, once per operation that
/// would otherwise succeed. Unset hooks mean no faults. Hooks must be
/// cheap and thread-safe: concurrent producers/consumers reach them while
/// holding the queue mutex, but distinct queues may share one hook object.
struct QueueFaultHooks {
  std::function<QueueFaultDecision()> on_enqueue;
  std::function<QueueFaultDecision()> on_dequeue;
};

/// Configuration of a Fjord queue. The paper's three named flavors:
///  * pull-queue:     blocking enqueue + blocking dequeue
///  * push-queue:     non-blocking enqueue + non-blocking dequeue
///  * Exchange:       non-blocking enqueue + blocking dequeue [Graf93]
struct QueueOptions {
  size_t capacity = 1024;
  QueueEnd enqueue = QueueEnd::kBlocking;
  QueueEnd dequeue = QueueEnd::kBlocking;
  /// When true, a non-blocking enqueue on a full queue drops the oldest
  /// element instead of failing — a simple load-shedding knob for QoS
  /// experiments (§4.3 "deciding what work to drop").
  bool drop_oldest_when_full = false;
  /// Optional fault injection (testing only; see QueueFaultHooks).
  std::shared_ptr<QueueFaultHooks> faults;
};

/// A bounded MPMC queue connecting a producer module to a consumer module.
/// Fjords let plans mix push and pull edges so that operators can be written
/// agnostic to whether their inputs are streamed or static.
///
/// End-of-stream: the producer calls Close(); consumers then drain the
/// remaining elements and observe closed() + empty.
template <typename T>
class FjordQueue {
 public:
  explicit FjordQueue(QueueOptions options = {}) : options_(options) {
    TCQ_CHECK(options_.capacity > 0) << "queue capacity must be positive";
  }

  FjordQueue(const FjordQueue&) = delete;
  FjordQueue& operator=(const FjordQueue&) = delete;

  const QueueOptions& options() const { return options_; }

  /// Inserts an element according to the configured enqueue mode.
  /// Returns false only when the element was not inserted: the queue is
  /// closed, or it is full in non-blocking mode (without drop_oldest).
  ///
  /// Racing Close(): the two calls serialize on the queue mutex. An
  /// Enqueue that wins the race inserts normally (consumers drain it);
  /// one that loses — including a blocking producer woken by Close —
  /// returns false with the element NOT inserted. Elements are never
  /// silently dropped by this race: a true return means the element is
  /// (or was) observable by consumers, a false return means it never was.
  ///
  /// Capacity: injected kDelay releases re-enter at the back regardless
  /// of capacity, so items_.size() may transiently overshoot capacity by
  /// at most the number of elements held back at release time. The fresh
  /// element itself is always gated against the POST-release size: a
  /// blocking producer whose slot was consumed by a release goes back to
  /// waiting instead of piling on (rechecked in a loop below).
  bool Enqueue(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    size_t added = 0;
    const bool ok = EnqueueOneLocked(std::move(item), &lock, &added);
    TCQ_METRIC(RecordEnqueueLocked(ok ? 1 : 0, ok ? 0 : 1));
    lock.unlock();
    NotifyEnqueued(added);
    return ok;
  }

  /// Inserts the elements of `items` in order under a single mutex
  /// acquisition, amortizing the per-element lock/notify round-trip
  /// (§4.3 batching at the dataflow edge). Fault hooks are consulted once
  /// PER element and delay countdowns age once per element — exactly as
  /// if each element were enqueued individually; only the locking and
  /// notification granularity changes.
  ///
  /// Returns the number of elements accepted — always a prefix of
  /// `items`, in order. Accepted elements are erased from `items`; a
  /// non-accepted suffix (queue closed, or full in non-blocking mode
  /// without drop_oldest) REMAINS in `items`, each element intact (never
  /// moved-from — rejection happens before any move), so the producer
  /// can retry or account for it. Blocking mode waits for space per
  /// element and accepts everything unless the queue closes mid-batch.
  size_t EnqueueBatch(std::vector<T>&& items) {
    size_t accepted = 0;
    size_t added = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      for (T& item : items) {
        if (!EnqueueOneLocked(std::move(item), &lock, &added)) break;
        ++accepted;
      }
      TCQ_METRIC(RecordEnqueueLocked(accepted, items.size() - accepted));
    }
    NotifyEnqueued(added);
    items.erase(items.begin(), items.begin() + static_cast<ptrdiff_t>(accepted));
    return accepted;
  }

  /// Result of a TryEnqueue attempt: kFull is retryable, kClosed is EOS.
  enum class TryResult { kAccepted, kFull, kClosed };

  /// Non-blocking insert attempt regardless of the configured enqueue
  /// end: never waits for space and never consults fault hooks. On kFull
  /// or kClosed the element is left intact in the caller for retry. This
  /// is the control-path flavor — a barrier closure bound for a consumer
  /// that may have died must be able to give up instead of blocking
  /// forever on a full queue nobody will ever drain.
  TryResult TryEnqueue(T& item) {
    TryResult result;
    size_t added = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) {
        result = TryResult::kClosed;
      } else {
        added += ReleaseExpiredLocked();
        if (items_.size() >= options_.capacity) {
          result = TryResult::kFull;
        } else {
          items_.push_back(std::move(item));
          ++added;
          TCQ_METRIC(RecordEnqueueLocked(1, 0));
          result = TryResult::kAccepted;
        }
      }
    }
    NotifyEnqueued(added);
    return result;
  }

  /// Removes the next element according to the configured dequeue mode.
  /// Returns nullopt when no element is available: queue empty in
  /// non-blocking mode, or closed and fully drained in blocking mode.
  std::optional<T> Dequeue() {
    std::unique_lock<std::mutex> lock(mu_);
    std::optional<T> out;
    size_t removed = 0;
    // Loop: a kDrop fault consumes an element without yielding one, so we
    // go back to waiting (blocking) or give up (non-blocking, empty).
    while (WaitForElementLocked(&lock, &removed)) {
      bool stop = false;
      out = DequeueOneLocked(&removed, &stop);
      if (out.has_value() || stop) break;
    }
    TCQ_METRIC(queue_internal::EdgeMetrics::Get().dequeued->Add(
        out.has_value() ? 1 : 0));
    lock.unlock();
    NotifyDequeued(removed);
    return out;
  }

  /// Removes up to `max_elements` elements under a single mutex
  /// acquisition, appending them to *out in dequeue order. Dequeue fault
  /// hooks are consulted once per removed element (kDrop discards and
  /// moves on; kDelay in non-blocking mode ends the batch early,
  /// pretending the rest of the queue is empty; kReorder removes from
  /// the faulted offset). In blocking mode the call waits until at least
  /// ONE element is available (or the queue closes); it never waits to
  /// fill the batch — whatever is present when it wakes is the batch.
  /// Returns the number of elements appended; 0 means empty
  /// (non-blocking), or closed and fully drained.
  size_t DequeueUpTo(size_t max_elements, std::vector<T>* out) {
    size_t taken = 0;
    size_t removed = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      bool stop = false;
      // Outer loop mirrors Dequeue: if kDrop faults consumed everything
      // before we took a single element, a blocking consumer goes back
      // to waiting — the contract promises at least one element or EOS.
      while (taken == 0 && !stop && WaitForElementLocked(&lock, &removed)) {
        while (taken < max_elements && !items_.empty()) {
          std::optional<T> one = DequeueOneLocked(&removed, &stop);
          if (one.has_value()) {
            out->push_back(std::move(*one));
            ++taken;
          }
          if (stop) break;
        }
      }
      TCQ_METRIC(queue_internal::EdgeMetrics::Get().dequeued->Add(taken));
    }
    NotifyDequeued(removed);
    return taken;
  }

  /// Non-blocking peek at emptiness (racy by nature; for scheduling hints).
  bool Empty() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.empty();
  }

  size_t Size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  /// Elements discarded by the drop_oldest_when_full policy.
  size_t DroppedCount() const {
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_;
  }

  /// Elements discarded by injected kDrop faults (either end).
  size_t FaultDrops() const {
    std::lock_guard<std::mutex> lock(mu_);
    return fault_drops_;
  }

  /// Elements currently held back by injected kDelay faults.
  size_t DelayedCount() const {
    std::lock_guard<std::mutex> lock(mu_);
    return delayed_.size();
  }

  /// Marks end-of-stream. Wakes all blocked producers and consumers.
  /// Releases every delayed element first, so an injected delay is a
  /// delay — never a loss — over the life of the stream.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (Delayed& d : delayed_) items_.push_back(std::move(d.item));
      delayed_.clear();
      if (!closed_) {
        TCQ_METRIC(queue_internal::EdgeMetrics::Get().closes->Add(1));
      }
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  /// True once the stream is finished: closed and drained.
  bool Exhausted() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_ && items_.empty();
  }

 private:
  struct Delayed {
    T item;
    size_t countdown;  ///< Enqueue operations left before release.
  };

#ifndef TCQ_METRICS_DISABLED
  /// Books one enqueue call's outcome (lock held: items_.size() is exact).
  void RecordEnqueueLocked(size_t accepted, size_t rejected) {
    queue_internal::EdgeMetrics& m = queue_internal::EdgeMetrics::Get();
    if (accepted > 0) m.enqueued->Add(accepted);
    if (rejected > 0) m.rejected->Add(rejected);
    m.depth->Record(items_.size());
  }
#endif

  /// Ages the held-back elements — "held for N later enqueues" counts the
  /// current enqueue, so an element delayed now must survive at least
  /// until the next one. Expired elements release at the back, ignoring
  /// capacity (the documented overshoot). Returns the number released.
  size_t ReleaseExpiredLocked() {
    size_t added = 0;
    for (auto it = delayed_.begin(); it != delayed_.end();) {
      if (--it->countdown == 0) {
        items_.push_back(std::move(it->item));
        ++added;
        it = delayed_.erase(it);
      } else {
        ++it;
      }
    }
    return added;
  }

  /// Core of Enqueue/EnqueueBatch for one element, called with the lock
  /// held (may release it while waiting for space). *added accumulates
  /// the number of elements made visible to consumers, for notification
  /// after unlock. Returns false when the element was not inserted.
  ///
  /// Takes the element by rvalue reference and only moves from it at the
  /// actual insertion/delay point, AFTER the closed and capacity gates:
  /// a rejected element is left intact in the caller, which is what lets
  /// EnqueueBatch honor its retryable-suffix contract for move-only or
  /// move-invalidating payloads (e.g. Tuple).
  bool EnqueueOneLocked(T&& item, std::unique_lock<std::mutex>* lock,
                        size_t* added) {
    if (closed_) return false;
    // Age countdowns once per element, BEFORE the capacity gate, so the
    // fresh element is admitted against the post-release size. (An
    // element rejected below still counts as one enqueue operation for
    // delay aging: the operation reached the queue.)
    *added += ReleaseExpiredLocked();
    // Capacity recheck loop: a blocking producer woken with space must
    // re-test, since delayed releases — its own aging above, or another
    // producer's while it waited — may have re-filled the queue.
    while (items_.size() >= options_.capacity) {
      if (options_.enqueue == QueueEnd::kNonBlocking) {
        if (!options_.drop_oldest_when_full) return false;
        items_.pop_front();
        ++dropped_;
        TCQ_METRIC(queue_internal::EdgeMetrics::Get().shed->Add(1));
      } else {
        TCQ_METRIC(
            queue_internal::EdgeMetrics::Get().producer_blocks->Add(1));
        // About to sleep: wake consumers for anything already made
        // visible (delayed releases, earlier batch elements) — they are
        // what will free up space. Holding the notifications until the
        // post-unlock NotifyEnqueued would deadlock a full queue whose
        // only consumer is blocked on not_empty_.
        if (*added > 0) {
          not_empty_.notify_all();
          *added = 0;
        }
        not_full_.wait(*lock, [&] {
          return items_.size() < options_.capacity || closed_;
        });
        if (closed_) return false;
      }
    }
    QueueFaultDecision fault;
    if (options_.faults != nullptr && options_.faults->on_enqueue) {
      fault = options_.faults->on_enqueue();
    }
    switch (fault.action) {
      case QueueFaultDecision::Action::kDrop:
        // The producer believes the element was delivered.
        ++fault_drops_;
        break;
      case QueueFaultDecision::Action::kDelay:
        delayed_.push_back(
            Delayed{std::move(item), fault.arg == 0 ? 1 : fault.arg});
        break;
      case QueueFaultDecision::Action::kReorder:
        items_.insert(items_.begin() +
                          static_cast<ptrdiff_t>(fault.arg %
                                                 (items_.size() + 1)),
                      std::move(item));
        ++(*added);
        break;
      case QueueFaultDecision::Action::kNone:
        items_.push_back(std::move(item));
        ++(*added);
        break;
    }
    return true;
  }

  /// Blocks (in blocking-dequeue mode) until an element is present or the
  /// queue closes. Returns true when at least one element is available.
  /// Flushes pending not_full_ notifications (from kDrop faults) before
  /// sleeping: the blocked producers they would wake are what will
  /// produce the element this consumer is about to wait for.
  bool WaitForElementLocked(std::unique_lock<std::mutex>* lock,
                            size_t* removed) {
    if (!items_.empty()) return true;
    if (options_.dequeue == QueueEnd::kNonBlocking) return false;
    if (*removed > 0) {
      not_full_.notify_all();
      *removed = 0;
    }
    if (!closed_) {
      TCQ_METRIC(queue_internal::EdgeMetrics::Get().consumer_blocks->Add(1));
    }
    not_empty_.wait(*lock, [&] { return !items_.empty() || closed_; });
    return !items_.empty();  // Empty here means closed and drained.
  }

  /// Removes one element under the lock, consulting the dequeue fault
  /// hook. Returns nullopt with *stop=false when the element was a kDrop
  /// casualty (caller should try again if it still wants one), and
  /// nullopt with *stop=true when a kDelay fault says to pretend the
  /// queue is empty (non-blocking mode only — the blocking contract
  /// promises an element once one is present).
  std::optional<T> DequeueOneLocked(size_t* removed, bool* stop) {
    QueueFaultDecision fault;
    if (options_.faults != nullptr && options_.faults->on_dequeue) {
      fault = options_.faults->on_dequeue();
    }
    if (fault.action == QueueFaultDecision::Action::kDrop) {
      items_.pop_front();
      ++fault_drops_;
      ++(*removed);
      return std::nullopt;  // The consumer transparently gets the next one.
    }
    if (fault.action == QueueFaultDecision::Action::kDelay &&
        options_.dequeue == QueueEnd::kNonBlocking) {
      *stop = true;
      return std::nullopt;
    }
    size_t idx = 0;
    if (fault.action == QueueFaultDecision::Action::kReorder) {
      idx = fault.arg % items_.size();
    }
    std::optional<T> out = std::move(items_[idx]);
    items_.erase(items_.begin() + static_cast<ptrdiff_t>(idx));
    ++(*removed);
    return out;
  }

  void NotifyEnqueued(size_t added) {
    if (added > 1) {
      not_empty_.notify_all();
    } else if (added == 1) {
      not_empty_.notify_one();
    }
  }

  void NotifyDequeued(size_t removed) {
    if (removed > 1) {
      not_full_.notify_all();
    } else if (removed == 1) {
      not_full_.notify_one();
    }
  }

  const QueueOptions options_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  std::deque<Delayed> delayed_;
  size_t dropped_ = 0;
  size_t fault_drops_ = 0;
  bool closed_ = false;
};

/// Convenience constructors for the paper's three queue flavors.
inline QueueOptions PullQueueOptions(size_t capacity = 1024) {
  return QueueOptions{capacity, QueueEnd::kBlocking, QueueEnd::kBlocking,
                      false, nullptr};
}
inline QueueOptions PushQueueOptions(size_t capacity = 1024) {
  return QueueOptions{capacity, QueueEnd::kNonBlocking,
                      QueueEnd::kNonBlocking, false, nullptr};
}
inline QueueOptions ExchangeQueueOptions(size_t capacity = 1024) {
  return QueueOptions{capacity, QueueEnd::kNonBlocking, QueueEnd::kBlocking,
                      false, nullptr};
}

}  // namespace tcq

#endif  // TCQ_FJORDS_QUEUE_H_
