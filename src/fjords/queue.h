#ifndef TCQ_FJORDS_QUEUE_H_
#define TCQ_FJORDS_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>

#include "common/logging.h"

namespace tcq {

/// Blocking behaviour of one end of a Fjord queue (§2.3 of the paper).
enum class QueueEnd {
  kBlocking,     ///< The call waits (producer for space, consumer for data).
  kNonBlocking,  ///< The call returns immediately, reporting failure.
};

/// Configuration of a Fjord queue. The paper's three named flavors:
///  * pull-queue:     blocking enqueue + blocking dequeue
///  * push-queue:     non-blocking enqueue + non-blocking dequeue
///  * Exchange:       non-blocking enqueue + blocking dequeue [Graf93]
struct QueueOptions {
  size_t capacity = 1024;
  QueueEnd enqueue = QueueEnd::kBlocking;
  QueueEnd dequeue = QueueEnd::kBlocking;
  /// When true, a non-blocking enqueue on a full queue drops the oldest
  /// element instead of failing — a simple load-shedding knob for QoS
  /// experiments (§4.3 "deciding what work to drop").
  bool drop_oldest_when_full = false;
};

/// A bounded MPMC queue connecting a producer module to a consumer module.
/// Fjords let plans mix push and pull edges so that operators can be written
/// agnostic to whether their inputs are streamed or static.
///
/// End-of-stream: the producer calls Close(); consumers then drain the
/// remaining elements and observe closed() + empty.
template <typename T>
class FjordQueue {
 public:
  explicit FjordQueue(QueueOptions options = {}) : options_(options) {
    TCQ_CHECK(options_.capacity > 0) << "queue capacity must be positive";
  }

  FjordQueue(const FjordQueue&) = delete;
  FjordQueue& operator=(const FjordQueue&) = delete;

  const QueueOptions& options() const { return options_; }

  /// Inserts an element according to the configured enqueue mode.
  /// Returns false only when the element was not inserted: the queue is
  /// closed, or it is full in non-blocking mode (without drop_oldest).
  bool Enqueue(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    if (closed_) return false;
    if (items_.size() >= options_.capacity) {
      if (options_.enqueue == QueueEnd::kNonBlocking) {
        if (!options_.drop_oldest_when_full) return false;
        items_.pop_front();
        ++dropped_;
      } else {
        not_full_.wait(lock, [&] {
          return items_.size() < options_.capacity || closed_;
        });
        if (closed_) return false;
      }
    }
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Removes the next element according to the configured dequeue mode.
  /// Returns nullopt when no element is available: queue empty in
  /// non-blocking mode, or closed and fully drained in blocking mode.
  std::optional<T> Dequeue() {
    std::unique_lock<std::mutex> lock(mu_);
    if (options_.dequeue == QueueEnd::kNonBlocking) {
      if (items_.empty()) return std::nullopt;
    } else {
      not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
      if (items_.empty()) return std::nullopt;  // Closed and drained.
    }
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking peek at emptiness (racy by nature; for scheduling hints).
  bool Empty() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.empty();
  }

  size_t Size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  /// Elements discarded by the drop_oldest_when_full policy.
  size_t DroppedCount() const {
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_;
  }

  /// Marks end-of-stream. Wakes all blocked producers and consumers.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  /// True once the stream is finished: closed and drained.
  bool Exhausted() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_ && items_.empty();
  }

 private:
  const QueueOptions options_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  size_t dropped_ = 0;
  bool closed_ = false;
};

/// Convenience constructors for the paper's three queue flavors.
inline QueueOptions PullQueueOptions(size_t capacity = 1024) {
  return QueueOptions{capacity, QueueEnd::kBlocking, QueueEnd::kBlocking,
                      false};
}
inline QueueOptions PushQueueOptions(size_t capacity = 1024) {
  return QueueOptions{capacity, QueueEnd::kNonBlocking,
                      QueueEnd::kNonBlocking, false};
}
inline QueueOptions ExchangeQueueOptions(size_t capacity = 1024) {
  return QueueOptions{capacity, QueueEnd::kNonBlocking, QueueEnd::kBlocking,
                      false};
}

}  // namespace tcq

#endif  // TCQ_FJORDS_QUEUE_H_
