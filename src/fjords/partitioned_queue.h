#ifndef TCQ_FJORDS_PARTITIONED_QUEUE_H_
#define TCQ_FJORDS_PARTITIONED_QUEUE_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "fjords/queue.h"
#include "telemetry/metrics.h"

namespace tcq {

/// The queue side of a real-threads exchange operator (Flux, [SHCF03]):
/// one bounded FjordQueue per consumer partition, plus the routing and
/// telemetry shared by every exchange instance. Producers scatter items by
/// a caller-supplied partition function (content-sensitive routing — see
/// flux/partition.h for the hash policy); each consumer drains exactly one
/// partition, so per-partition FIFO order is preserved end to end even
/// though partitions proceed independently.
///
/// Telemetry (DESIGN.md §10/§11): per-partition counters under an indexed
/// family — `<family>.<i>.routed` and `<family>.<i>.queue_depth` — and a
/// `<family>.imbalance` gauge holding max/mean backlog as a percentage
/// (0 = idle, 100 = perfectly balanced, >100 = skewed), the statistic
/// Flux's controller watches. The default family is `tcq.shard` (the
/// sharded CACQ exchange).
template <typename T>
class PartitionedQueue {
 public:
  PartitionedQueue(size_t num_partitions, QueueOptions per_partition,
                   std::string metric_family = "tcq.shard")
      : family_(std::move(metric_family)) {
    TCQ_CHECK(num_partitions > 0);
    queues_.reserve(num_partitions);
    for (size_t i = 0; i < num_partitions; ++i) {
      queues_.push_back(std::make_unique<FjordQueue<T>>(per_partition));
    }
#ifndef TCQ_METRICS_DISABLED
    MetricRegistry& r = MetricRegistry::Global();
    routed_.reserve(num_partitions);
    depth_.reserve(num_partitions);
    for (size_t i = 0; i < num_partitions; ++i) {
      routed_.push_back(r.GetCounter(family_, i, "routed"));
      depth_.push_back(r.GetGauge(family_, i, "queue_depth"));
    }
    imbalance_ = r.GetGauge(family_ + ".imbalance");
#endif
  }

  size_t num_partitions() const { return queues_.size(); }
  FjordQueue<T>& partition(size_t i) { return *queues_[i]; }
  const FjordQueue<T>& partition(size_t i) const { return *queues_[i]; }

  /// Dual-routing hook (Flux process-pair HA): called with
  /// (partition, item, routed_count) for every EnqueuePartition, under a
  /// per-partition lock held across tee + enqueue — so whatever order the
  /// tee observes IS the order the partition's consumer dequeues. The tee
  /// may mutate the item (e.g. stamp a log sequence number) before it
  /// enters the queue. Set before producers start; the hook must not call
  /// back into this queue.
  using Tee = std::function<void(size_t, T&, size_t)>;
  void SetTee(Tee tee) {
    tee_ = std::move(tee);
    if (tee_mus_.empty()) {
      tee_mus_ = std::vector<std::mutex>(queues_.size());
    }
  }

  /// Enqueues one item bound for partition `p`, booking `routed_count`
  /// routed units against it (an item that is itself a batch of N tuples
  /// books N). Returns false if the partition queue rejected it (closed,
  /// or full with a non-blocking producer end).
  bool EnqueuePartition(size_t p, T item, size_t routed_count = 1) {
    bool ok;
    if (tee_) {
      // Tee + enqueue are one atom per partition: concurrent producers
      // serialize here instead of inside the queue, keeping the replica
      // changelog's record order identical to the queue's task order.
      std::lock_guard<std::mutex> lock(tee_mus_[p]);
      tee_(p, item, routed_count);
      ok = queues_[p]->Enqueue(std::move(item));
    } else {
      ok = queues_[p]->Enqueue(std::move(item));
    }
    if (ok) TCQ_METRIC(routed_[p]->Add(routed_count));
    return ok;
  }

  /// Scatters a batch: each item goes to partition `shard_of(item)`,
  /// preserving input order within each partition. Returns the number of
  /// items accepted. (With blocking producer ends the only losses are
  /// closed partitions.)
  template <typename ShardFn>
  size_t Scatter(std::vector<T>&& items, ShardFn&& shard_of) {
    std::vector<std::vector<T>> groups(queues_.size());
    for (T& item : items) {
      const size_t p = shard_of(static_cast<const T&>(item));
      TCQ_CHECK(p < queues_.size());
      groups[p].push_back(std::move(item));
    }
    items.clear();
    size_t accepted = 0;
    for (size_t p = 0; p < groups.size(); ++p) {
      if (groups[p].empty()) continue;
      const size_t n = groups[p].size();
      const size_t taken = queues_[p]->EnqueueBatch(std::move(groups[p]));
      TCQ_METRIC(routed_[p]->Add(taken));
      accepted += taken;
      (void)n;
    }
    RefreshDepthStats();
    return accepted;
  }

  /// Publishes instantaneous per-partition depths and the max/mean
  /// imbalance percentage to the registry. Called once per scatter (or
  /// per producer batch), not per item — N Size() locks per call.
  void RefreshDepthStats() {
#ifndef TCQ_METRICS_DISABLED
    size_t total = 0;
    size_t max_depth = 0;
    for (size_t p = 0; p < queues_.size(); ++p) {
      const size_t d = queues_[p]->Size();
      depth_[p]->Set(static_cast<int64_t>(d));
      total += d;
      if (d > max_depth) max_depth = d;
    }
    // An idle exchange (total backlog 0) reports 0, not 100: max/mean is
    // undefined with nothing queued, and reporting "balanced" here made an
    // idle pipeline indistinguishable from a loaded balanced one — which
    // would spuriously feed the rebalance controller's trigger statistic.
    const double mean =
        static_cast<double>(total) / static_cast<double>(queues_.size());
    imbalance_->Set(total == 0 ? 0
                               : static_cast<int64_t>(
                                     100.0 * static_cast<double>(max_depth) /
                                     mean));
#endif
  }

  /// Closes every partition (end of stream for all consumers).
  void CloseAll() {
    for (auto& q : queues_) q->Close();
  }

  /// True once every partition is closed and drained.
  bool AllExhausted() const {
    for (const auto& q : queues_) {
      if (!q->Exhausted()) return false;
    }
    return true;
  }

  size_t TotalSize() const {
    size_t total = 0;
    for (const auto& q : queues_) total += q->Size();
    return total;
  }

 private:
  const std::string family_;
  std::vector<std::unique_ptr<FjordQueue<T>>> queues_;
  Tee tee_;
  /// One lock per partition, allocated iff a tee is set (deque of mutexes
  /// is non-movable; vector is sized once in SetTee).
  std::vector<std::mutex> tee_mus_;
#ifndef TCQ_METRICS_DISABLED
  std::vector<Counter*> routed_;
  std::vector<Gauge*> depth_;
  Gauge* imbalance_ = nullptr;
#endif
};

}  // namespace tcq

#endif  // TCQ_FJORDS_PARTITIONED_QUEUE_H_
