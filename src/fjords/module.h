#ifndef TCQ_FJORDS_MODULE_H_
#define TCQ_FJORDS_MODULE_H_

#include <memory>
#include <string>
#include <vector>

#include "fjords/queue.h"
#include "tuple/tuple.h"

namespace tcq {

using TupleQueue = FjordQueue<Tuple>;
using TupleQueuePtr = std::shared_ptr<TupleQueue>;

/// A dataflow module scheduled non-preemptively (the paper's Dispatch Unit
/// abstraction, §4.2.2). A module owns references to its input/output
/// Fjord queues and performs a bounded quantum of work per Step() call,
/// maintaining its own state between calls — never blocking the scheduler
/// for longer than one quantum.
class FjordModule {
 public:
  /// Outcome of one scheduling quantum.
  enum class StepResult {
    kDidWork,  ///< Consumed or produced at least one tuple.
    kIdle,     ///< Nothing to do right now (inputs empty, outputs full).
    kDone,     ///< Finished permanently (inputs exhausted, state flushed).
  };

  explicit FjordModule(std::string name) : name_(std::move(name)) {}
  virtual ~FjordModule() = default;

  FjordModule(const FjordModule&) = delete;
  FjordModule& operator=(const FjordModule&) = delete;

  const std::string& name() const { return name_; }

  /// Performs up to `max_tuples` tuples worth of work.
  virtual StepResult Step(size_t max_tuples) = 0;

 private:
  std::string name_;
};

/// Base for modules that consume one input queue. Drains the input in
/// batches (one mutex acquisition per DequeueUpTo instead of per tuple)
/// and hands each batch to ProcessBatch, whose default implementation
/// loops ProcessOne — so a module only needs per-tuple logic to work,
/// and overrides ProcessBatch when it can exploit whole batches (e.g.
/// StreamPumpModule forwarding to Server::PushBatch).
///
/// Scheduling contract is unchanged from hand-written Step loops:
///  * backpressure mid-batch ends the quantum (kDidWork); unconsumed
///    tuples stay buffered for the next quantum;
///  * kDone only after the input is exhausted, the buffered batch is
///    fully consumed and FlushPending reports nothing stalled;
///  * OnInputExhausted (close outputs there) fires exactly once, right
///    before the first kDone.
class BatchInputModule : public FjordModule {
 public:
  StepResult Step(size_t max_tuples) final;

 protected:
  enum class FlushResult {
    kClear,    ///< Nothing was pending.
    kFlushed,  ///< Pending work went out (counts as work this quantum).
    kStalled,  ///< Still blocked on downstream backpressure.
  };

  BatchInputModule(std::string name, TupleQueuePtr in,
                   size_t batch_capacity = 256)
      : FjordModule(std::move(name)),
        in_(std::move(in)),
        batch_capacity_(batch_capacity == 0 ? 1 : batch_capacity) {}

  /// Processes tuples of `batch` starting at *pos, advancing *pos past
  /// each consumed tuple. Returns false to end the quantum early
  /// (downstream backpressure). Default: loop ProcessOne.
  virtual bool ProcessBatch(std::vector<Tuple>* batch, size_t* pos);

  /// Processes (and always consumes) one tuple; stash any output that
  /// would not fit downstream and return false to end the quantum.
  virtual bool ProcessOne(Tuple& t) = 0;

  /// Retries output stalled by backpressure from an earlier quantum.
  virtual FlushResult FlushPending() { return FlushResult::kClear; }

  /// The input is exhausted and every buffered tuple was consumed:
  /// close/flush outputs. Called once, immediately before kDone.
  virtual void OnInputExhausted() {}

  const TupleQueuePtr& input() const { return in_; }

 private:
  TupleQueuePtr in_;
  const size_t batch_capacity_;
  std::vector<Tuple> batch_;  ///< Buffered input; [pos_, end) unconsumed.
  size_t pos_ = 0;
  bool done_ = false;
};

using FjordModulePtr = std::shared_ptr<FjordModule>;

}  // namespace tcq

#endif  // TCQ_FJORDS_MODULE_H_
