#ifndef TCQ_FJORDS_MODULE_H_
#define TCQ_FJORDS_MODULE_H_

#include <memory>
#include <string>
#include <vector>

#include "fjords/queue.h"
#include "tuple/tuple.h"

namespace tcq {

using TupleQueue = FjordQueue<Tuple>;
using TupleQueuePtr = std::shared_ptr<TupleQueue>;

/// A dataflow module scheduled non-preemptively (the paper's Dispatch Unit
/// abstraction, §4.2.2). A module owns references to its input/output
/// Fjord queues and performs a bounded quantum of work per Step() call,
/// maintaining its own state between calls — never blocking the scheduler
/// for longer than one quantum.
class FjordModule {
 public:
  /// Outcome of one scheduling quantum.
  enum class StepResult {
    kDidWork,  ///< Consumed or produced at least one tuple.
    kIdle,     ///< Nothing to do right now (inputs empty, outputs full).
    kDone,     ///< Finished permanently (inputs exhausted, state flushed).
  };

  explicit FjordModule(std::string name) : name_(std::move(name)) {}
  virtual ~FjordModule() = default;

  FjordModule(const FjordModule&) = delete;
  FjordModule& operator=(const FjordModule&) = delete;

  const std::string& name() const { return name_; }

  /// Performs up to `max_tuples` tuples worth of work.
  virtual StepResult Step(size_t max_tuples) = 0;

 private:
  std::string name_;
};

using FjordModulePtr = std::shared_ptr<FjordModule>;

}  // namespace tcq

#endif  // TCQ_FJORDS_MODULE_H_
