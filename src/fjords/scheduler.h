#ifndef TCQ_FJORDS_SCHEDULER_H_
#define TCQ_FJORDS_SCHEDULER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fjords/module.h"

namespace tcq {

/// An Execution Object (§4.2.2): one system thread providing execution
/// context for a set of non-preemptive Dispatch Units (FjordModules),
/// scheduled round-robin. Modules can be added while the EO runs (dynamic
/// fold-in of fresh query plans).
class ExecutionObject {
 public:
  struct Options {
    /// Tuples each module may process per quantum (the batching knob of
    /// §4.3 at the scheduler level).
    size_t quantum = 64;
    /// Microseconds to sleep when a full round finds no work.
    size_t idle_sleep_micros = 50;
  };

  explicit ExecutionObject(std::string name);
  ExecutionObject(std::string name, Options options);
  ~ExecutionObject();

  ExecutionObject(const ExecutionObject&) = delete;
  ExecutionObject& operator=(const ExecutionObject&) = delete;

  const std::string& name() const { return name_; }

  /// Registers a module. Safe to call before Start() or while running,
  /// from any thread.
  void AddModule(FjordModulePtr module);

  /// Launches the scheduling thread. Checks that the EO is not already
  /// running. Start/Stop/Join serialize on an internal lifecycle mutex,
  /// so concurrent callers see a consistent thread state.
  void Start();

  /// Requests shutdown and joins the thread. Idempotent and safe to call
  /// concurrently from multiple threads.
  void Stop();

  /// Blocks until every registered module reports kDone, then stops.
  void Join();

  /// Runs the scheduling loop on the caller's thread until all modules are
  /// done (single-threaded mode; used by tests and deterministic benches).
  void RunToCompletion();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Total Step() calls that returned kDidWork (scheduling statistic).
  uint64_t work_quanta() const {
    return work_quanta_.load(std::memory_order_relaxed);
  }

 private:
  /// One pass over all live modules. Returns true if any module did work;
  /// sets *all_done if every module has finished.
  bool RunRound(bool* all_done);
  void ThreadMain();
  void DrainPending();

  const std::string name_;
  const Options options_;

  std::mutex pending_mu_;
  std::vector<FjordModulePtr> pending_;

  std::vector<FjordModulePtr> modules_;  // Owned by the scheduler thread.
  std::vector<bool> done_;

  std::mutex lifecycle_mu_;  ///< Serializes Start/Stop (guards thread_).
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> all_done_{false};
  std::atomic<uint64_t> work_quanta_{0};
  /// Modules registered but not yet kDone — includes still-pending ones,
  /// so completion checks cannot race a concurrent AddModule: the count
  /// rises in AddModule before the module is visible anywhere else.
  std::atomic<uint64_t> incomplete_{0};
  std::atomic<uint64_t> total_added_{0};
};

}  // namespace tcq

#endif  // TCQ_FJORDS_SCHEDULER_H_
