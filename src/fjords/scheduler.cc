#include "fjords/scheduler.h"

#include <chrono>

#include "common/logging.h"

namespace tcq {

ExecutionObject::ExecutionObject(std::string name)
    : ExecutionObject(std::move(name), Options()) {}

ExecutionObject::ExecutionObject(std::string name, Options options)
    : name_(std::move(name)), options_(options) {}

ExecutionObject::~ExecutionObject() { Stop(); }

void ExecutionObject::AddModule(FjordModulePtr module) {
  TCQ_CHECK(module != nullptr);
  std::lock_guard<std::mutex> lock(pending_mu_);
  pending_.push_back(std::move(module));
}

void ExecutionObject::DrainPending() {
  std::lock_guard<std::mutex> lock(pending_mu_);
  for (auto& m : pending_) {
    modules_.push_back(std::move(m));
    done_.push_back(false);
  }
  pending_.clear();
}

bool ExecutionObject::RunRound(bool* all_done) {
  DrainPending();
  bool any_work = false;
  bool everyone_done = !modules_.empty();
  for (size_t i = 0; i < modules_.size(); ++i) {
    if (done_[i]) continue;
    const FjordModule::StepResult r = modules_[i]->Step(options_.quantum);
    switch (r) {
      case FjordModule::StepResult::kDidWork:
        any_work = true;
        everyone_done = false;
        work_quanta_.fetch_add(1, std::memory_order_relaxed);
        break;
      case FjordModule::StepResult::kIdle:
        everyone_done = false;
        break;
      case FjordModule::StepResult::kDone:
        done_[i] = true;
        break;
    }
  }
  // A module marked done during this round still counts toward completion.
  if (everyone_done) {
    for (bool d : done_) everyone_done = everyone_done && d;
  }
  *all_done = everyone_done && !modules_.empty();
  return any_work;
}

void ExecutionObject::ThreadMain() {
  while (!stop_requested_.load(std::memory_order_acquire)) {
    bool all_done = false;
    const bool any_work = RunRound(&all_done);
    if (all_done) {
      // Re-check for dynamically added modules before declaring completion.
      DrainPending();
      bool still_done = true;
      for (bool d : done_) still_done = still_done && d;
      if (still_done && done_.size() == modules_.size()) {
        all_done_.store(true, std::memory_order_release);
        // Stay alive: new queries may still be folded in. Sleep politely.
        std::this_thread::sleep_for(
            std::chrono::microseconds(options_.idle_sleep_micros));
        continue;
      }
    }
    all_done_.store(all_done, std::memory_order_release);
    if (!any_work) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(options_.idle_sleep_micros));
    }
  }
  running_.store(false, std::memory_order_release);
}

void ExecutionObject::Start() {
  TCQ_CHECK(!running_.load()) << "EO " << name_ << " already started";
  stop_requested_.store(false);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { ThreadMain(); });
}

void ExecutionObject::Stop() {
  stop_requested_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
}

void ExecutionObject::Join() {
  while (running() && !all_done_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  Stop();
}

void ExecutionObject::RunToCompletion() {
  TCQ_CHECK(!running_.load()) << "EO " << name_ << " is running on a thread";
  while (true) {
    bool all_done = false;
    const bool any_work = RunRound(&all_done);
    if (all_done) return;
    if (!any_work) {
      // Single-threaded mode: idle with no thread to produce more work
      // means sources are non-blocking and temporarily dry; spin politely.
      std::this_thread::sleep_for(
          std::chrono::microseconds(options_.idle_sleep_micros));
    }
  }
}

}  // namespace tcq
