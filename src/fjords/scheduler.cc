#include "fjords/scheduler.h"

#include <chrono>

#include "common/logging.h"

namespace tcq {

ExecutionObject::ExecutionObject(std::string name)
    : ExecutionObject(std::move(name), Options()) {}

ExecutionObject::ExecutionObject(std::string name, Options options)
    : name_(std::move(name)), options_(options) {}

ExecutionObject::~ExecutionObject() { Stop(); }

void ExecutionObject::AddModule(FjordModulePtr module) {
  TCQ_CHECK(module != nullptr);
  std::lock_guard<std::mutex> lock(pending_mu_);
  // Count BEFORE publishing: any completion check that still reads the
  // old count also cannot see (and skip) this module.
  incomplete_.fetch_add(1, std::memory_order_release);
  total_added_.fetch_add(1, std::memory_order_release);
  all_done_.store(false, std::memory_order_release);
  pending_.push_back(std::move(module));
}

void ExecutionObject::DrainPending() {
  std::lock_guard<std::mutex> lock(pending_mu_);
  for (auto& m : pending_) {
    modules_.push_back(std::move(m));
    done_.push_back(false);
  }
  pending_.clear();
}

bool ExecutionObject::RunRound(bool* all_done) {
  DrainPending();
  bool any_work = false;
  for (size_t i = 0; i < modules_.size(); ++i) {
    if (done_[i]) continue;
    const FjordModule::StepResult r = modules_[i]->Step(options_.quantum);
    switch (r) {
      case FjordModule::StepResult::kDidWork:
        any_work = true;
        work_quanta_.fetch_add(1, std::memory_order_relaxed);
        break;
      case FjordModule::StepResult::kIdle:
        break;
      case FjordModule::StepResult::kDone:
        done_[i] = true;
        incomplete_.fetch_sub(1, std::memory_order_release);
        break;
    }
  }
  // incomplete_ counts pending modules too, so a concurrent AddModule
  // can never be missed by this check (it raises the count before the
  // module becomes visible). Modules marked done this round count.
  *all_done = !modules_.empty() &&
              incomplete_.load(std::memory_order_acquire) == 0;
  return any_work;
}

void ExecutionObject::ThreadMain() {
  while (!stop_requested_.load(std::memory_order_acquire)) {
    bool all_done = false;
    const bool any_work = RunRound(&all_done);
    all_done_.store(all_done, std::memory_order_release);
    // Stay alive even when all modules are done: new queries may still be
    // folded in dynamically. Sleep politely whenever idle.
    if (!any_work) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(options_.idle_sleep_micros));
    }
  }
  running_.store(false, std::memory_order_release);
}

void ExecutionObject::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  TCQ_CHECK(!thread_.joinable()) << "EO " << name_ << " already started";
  stop_requested_.store(false);
  all_done_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { ThreadMain(); });
}

void ExecutionObject::Stop() {
  // The store must happen under lifecycle_mu_: set before the lock, a
  // Start() racing in between would reset the flag and launch a thread
  // this Stop() then joins forever (it never sees the request).
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  stop_requested_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  thread_ = std::thread();
  running_.store(false, std::memory_order_release);
}

void ExecutionObject::Join() {
  // Checks incomplete_ directly rather than all_done_: the cached flag
  // can be momentarily stale-true right after an AddModule, and stopping
  // on it would strand the freshly added module.
  while (running() &&
         (total_added_.load(std::memory_order_acquire) == 0 ||
          incomplete_.load(std::memory_order_acquire) != 0)) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  Stop();
}

void ExecutionObject::RunToCompletion() {
  TCQ_CHECK(!running_.load()) << "EO " << name_ << " is running on a thread";
  while (true) {
    bool all_done = false;
    const bool any_work = RunRound(&all_done);
    if (all_done) return;
    if (!any_work) {
      // Single-threaded mode: idle with no thread to produce more work
      // means sources are non-blocking and temporarily dry; spin politely.
      std::this_thread::sleep_for(
          std::chrono::microseconds(options_.idle_sleep_micros));
    }
  }
}

}  // namespace tcq
