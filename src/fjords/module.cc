#include "fjords/module.h"

#include <algorithm>

namespace tcq {

bool BatchInputModule::ProcessBatch(std::vector<Tuple>* batch, size_t* pos) {
  while (*pos < batch->size()) {
    Tuple& t = (*batch)[(*pos)++];
    if (!ProcessOne(t)) return false;
  }
  return true;
}

FjordModule::StepResult BatchInputModule::Step(size_t max_tuples) {
  if (done_) return StepResult::kDone;
  size_t work = 0;
  switch (FlushPending()) {
    case FlushResult::kStalled:
      return StepResult::kIdle;
    case FlushResult::kFlushed:
      ++work;
      break;
    case FlushResult::kClear:
      break;
  }
  while (work < max_tuples) {
    if (pos_ >= batch_.size()) {
      batch_.clear();
      pos_ = 0;
      in_->DequeueUpTo(std::min(max_tuples - work, batch_capacity_), &batch_);
      if (batch_.empty()) break;
    }
    const size_t before = pos_;
    const bool keep_going = ProcessBatch(&batch_, &pos_);
    work += pos_ - before;
    if (!keep_going) {
      return work > 0 ? StepResult::kDidWork : StepResult::kIdle;
    }
  }
  if (work > 0) return StepResult::kDidWork;
  // Input dry with nothing buffered: finished only once the stream ends.
  if (in_->Exhausted()) {
    OnInputExhausted();
    done_ = true;
    return StepResult::kDone;
  }
  return StepResult::kIdle;
}

}  // namespace tcq
