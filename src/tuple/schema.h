#ifndef TCQ_TUPLE_SCHEMA_H_
#define TCQ_TUPLE_SCHEMA_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "tuple/value.h"

namespace tcq {

/// One column of a stream or intermediate result.
struct Field {
  std::string name;       ///< Column name, e.g. "closingPrice".
  ValueType type;         ///< Declared type.
  std::string qualifier;  ///< Stream/alias it came from, e.g. "c1". May be "".

  /// "qualifier.name", or just "name" when unqualified.
  std::string QualifiedName() const {
    return qualifier.empty() ? name : qualifier + "." + name;
  }
};

/// An ordered list of fields. Schemas are immutable once built and shared
/// via shared_ptr; join outputs build concatenated schemas.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  static std::shared_ptr<const Schema> Make(std::vector<Field> fields) {
    return std::make_shared<const Schema>(std::move(fields));
  }

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Resolves a possibly-qualified column reference to a field index.
  /// "c1.price" matches only qualifier c1; bare "price" matches any field
  /// named price but errors if the name is ambiguous across qualifiers.
  Result<size_t> IndexOf(const std::string& name) const;

  /// Concatenation for join outputs: fields of `left` then fields of
  /// `right`, qualifiers preserved.
  static std::shared_ptr<const Schema> Concat(const Schema& left,
                                              const Schema& right);

  /// Returns a copy of this schema with every field's qualifier replaced.
  std::shared_ptr<const Schema> WithQualifier(const std::string& q) const;

  std::string ToString() const;

 private:
  std::vector<Field> fields_;
};

using SchemaPtr = std::shared_ptr<const Schema>;

}  // namespace tcq

#endif  // TCQ_TUPLE_SCHEMA_H_
