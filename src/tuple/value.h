#ifndef TCQ_TUPLE_VALUE_H_
#define TCQ_TUPLE_VALUE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <variant>

#include "common/status.h"

namespace tcq {

/// Column types supported by the engine. kInt64 doubles as the carrier for
/// timestamps (the paper's `long timestamp`); kString covers char(N)
/// columns such as stockSymbol.
enum class ValueType : uint8_t {
  kNull = 0,
  kBool,
  kInt64,
  kDouble,
  kString,
};

const char* ValueTypeToString(ValueType type);

/// A single typed cell. Value is a regular value type: copyable, comparable,
/// hashable; strings are the only heap-owning alternative.
class Value {
 public:
  /// Constructs SQL NULL.
  Value() : data_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(Data(std::in_place_index<1>, v)); }
  static Value Int64(int64_t v) {
    return Value(Data(std::in_place_index<2>, v));
  }
  static Value Double(double v) {
    return Value(Data(std::in_place_index<3>, v));
  }
  static Value String(std::string v) {
    return Value(Data(std::in_place_index<4>, std::move(v)));
  }

  ValueType type() const {
    switch (data_.index()) {
      case 0:
        return ValueType::kNull;
      case 1:
        return ValueType::kBool;
      case 2:
        return ValueType::kInt64;
      case 3:
        return ValueType::kDouble;
      default:
        return ValueType::kString;
    }
  }

  bool is_null() const { return data_.index() == 0; }
  bool bool_value() const { return std::get<1>(data_); }
  int64_t int64_value() const { return std::get<2>(data_); }
  double double_value() const { return std::get<3>(data_); }
  const std::string& string_value() const { return std::get<4>(data_); }

  /// Numeric view: int64 and double both read as double. Asserts on
  /// non-numeric types.
  double AsDouble() const {
    return type() == ValueType::kInt64 ? static_cast<double>(int64_value())
                                       : double_value();
  }

  bool is_numeric() const {
    return type() == ValueType::kInt64 || type() == ValueType::kDouble;
  }

  /// Three-way comparison. Numeric types compare cross-type (1 == 1.0).
  /// NULL sorts before everything and equals only NULL. Comparing a string
  /// with a non-string is a caller bug caught by the type checker upstream;
  /// here it falls back to type-tag ordering.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }
  bool operator<=(const Value& other) const { return Compare(other) <= 0; }
  bool operator>(const Value& other) const { return Compare(other) > 0; }
  bool operator>=(const Value& other) const { return Compare(other) >= 0; }

  /// Hash consistent with Compare for same-type values; numerics hash by
  /// their double image so 1 and 1.0 collide (as they compare equal).
  size_t Hash() const;

  std::string ToString() const;

 private:
  using Data =
      std::variant<std::monostate, bool, int64_t, double, std::string>;
  explicit Value(Data data) : data_(std::move(data)) {}

  Data data_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace tcq

#endif  // TCQ_TUPLE_VALUE_H_
