#ifndef TCQ_TUPLE_CATALOG_H_
#define TCQ_TUPLE_CATALOG_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "tuple/schema.h"
#include "tuple/tuple.h"

namespace tcq {

/// Metadata for one named data source. A source is either a stream (tuples
/// arrive over time; queries must window it) or a static table (finite,
/// fully available; the paper treats inputs without a WindowIs clause as
/// static tables).
struct StreamDef {
  std::string name;
  SchemaPtr schema;
  TimeDomain domain = TimeDomain::kLogical;
  /// Index of the column that carries the application timestamp the window
  /// for-loop ranges over, or -1 to use arrival sequence numbers.
  int timestamp_field = -1;
  bool is_table = false;
};

/// The system catalog: named streams, static tables, and table contents.
/// Thread-safe; the FrontEnd registers sources while the Executor reads.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Registers a stream. Fails with AlreadyExists on duplicate names.
  Status RegisterStream(StreamDef def);

  /// Registers a static table together with its rows.
  Status RegisterTable(StreamDef def, TupleVector rows);

  /// Looks up a stream or table definition by name.
  Result<StreamDef> GetStream(const std::string& name) const;

  /// Returns the rows of a static table.
  Result<TupleVector> GetTableRows(const std::string& name) const;

  bool Exists(const std::string& name) const;

  std::vector<std::string> ListSources() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, StreamDef> defs_;
  std::map<std::string, TupleVector> table_rows_;
};

}  // namespace tcq

#endif  // TCQ_TUPLE_CATALOG_H_
