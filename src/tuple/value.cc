#include "tuple/value.h"

#include <cmath>
#include <cstring>
#include <sstream>

namespace tcq {

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return "BOOL";
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "?";
}

int Value::Compare(const Value& other) const {
  const bool lnull = is_null();
  const bool rnull = other.is_null();
  if (lnull || rnull) {
    if (lnull && rnull) return 0;
    return lnull ? -1 : 1;
  }
  if (is_numeric() && other.is_numeric()) {
    // Exact path when both are int64 (avoids double rounding on big ints).
    if (type() == ValueType::kInt64 && other.type() == ValueType::kInt64) {
      const int64_t l = int64_value();
      const int64_t r = other.int64_value();
      return l < r ? -1 : (l > r ? 1 : 0);
    }
    const double l = AsDouble();
    const double r = other.AsDouble();
    return l < r ? -1 : (l > r ? 1 : 0);
  }
  if (type() != other.type()) {
    return static_cast<int>(type()) < static_cast<int>(other.type()) ? -1 : 1;
  }
  switch (type()) {
    case ValueType::kBool: {
      const int l = bool_value() ? 1 : 0;
      const int r = other.bool_value() ? 1 : 0;
      return l - r;
    }
    case ValueType::kString:
      return string_value().compare(other.string_value()) < 0
                 ? -1
                 : (string_value() == other.string_value() ? 0 : 1);
    default:
      return 0;
  }
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9E3779B9u;
    case ValueType::kBool:
      return bool_value() ? 0x517CC1B7u : 0x27220A95u;
    case ValueType::kInt64:
    case ValueType::kDouble: {
      // Hash through the double image so cross-type equal values collide.
      double d = AsDouble();
      if (d == 0.0) d = 0.0;  // Collapse -0.0 and +0.0.
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      std::memcpy(&bits, &d, sizeof(bits));
      // splitmix64 finalizer: std::hash<uint64_t> is the identity on
      // common stdlibs, which makes small integers collide modulo any
      // power of two (partitioners take hash % N).
      bits = (bits ^ (bits >> 30)) * 0xBF58476D1CE4E5B9ULL;
      bits = (bits ^ (bits >> 27)) * 0x94D049BB133111EBULL;
      return static_cast<size_t>(bits ^ (bits >> 31));
    }
    case ValueType::kString:
      return std::hash<std::string>{}(string_value());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return bool_value() ? "true" : "false";
    case ValueType::kInt64:
      return std::to_string(int64_value());
    case ValueType::kDouble: {
      std::ostringstream os;
      os << double_value();
      return os.str();
    }
    case ValueType::kString:
      return "'" + string_value() + "'";
  }
  return "?";
}

}  // namespace tcq
