#include "tuple/tuple.h"

#include <sstream>

namespace tcq {

const std::shared_ptr<const std::vector<Value>>& Tuple::EmptyCells() {
  static const auto& empty =
      *new std::shared_ptr<const std::vector<Value>>(
          std::make_shared<const std::vector<Value>>());
  return empty;
}

std::string Tuple::ToString() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < arity(); ++i) {
    if (i > 0) os << ", ";
    os << cell(i).ToString();
  }
  os << " @" << ts_ << "]";
  return os.str();
}

}  // namespace tcq
