#include "tuple/tuple.h"

#include <sstream>

namespace tcq {

std::string Tuple::ToString() const {
  std::ostringstream os;
  if (retraction_) os << "-";
  os << "[";
  for (size_t i = 0; i < arity(); ++i) {
    if (i > 0) os << ", ";
    os << cell(i).ToString();
  }
  os << " @" << ts_ << "]";
  return os.str();
}

}  // namespace tcq
