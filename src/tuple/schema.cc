#include "tuple/schema.h"

#include <sstream>

namespace tcq {

Result<size_t> Schema::IndexOf(const std::string& name) const {
  // Split an optional "qualifier." prefix.
  std::string qualifier;
  std::string column = name;
  const size_t dot = name.find('.');
  if (dot != std::string::npos) {
    qualifier = name.substr(0, dot);
    column = name.substr(dot + 1);
  }

  size_t found = fields_.size();
  for (size_t i = 0; i < fields_.size(); ++i) {
    const Field& f = fields_[i];
    if (f.name != column) continue;
    if (!qualifier.empty() && f.qualifier != qualifier) continue;
    if (found != fields_.size()) {
      return Status::InvalidArgument("ambiguous column reference: " + name);
    }
    found = i;
  }
  if (found == fields_.size()) {
    return Status::NotFound("no such column: " + name);
  }
  return found;
}

std::shared_ptr<const Schema> Schema::Concat(const Schema& left,
                                             const Schema& right) {
  std::vector<Field> fields = left.fields_;
  fields.insert(fields.end(), right.fields_.begin(), right.fields_.end());
  return Make(std::move(fields));
}

std::shared_ptr<const Schema> Schema::WithQualifier(
    const std::string& q) const {
  std::vector<Field> fields = fields_;
  for (Field& f : fields) f.qualifier = q;
  return Make(std::move(fields));
}

std::string Schema::ToString() const {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) os << ", ";
    os << fields_[i].QualifiedName() << " "
       << ValueTypeToString(fields_[i].type);
  }
  os << ")";
  return os.str();
}

}  // namespace tcq
