#ifndef TCQ_TUPLE_TUPLE_H_
#define TCQ_TUPLE_TUPLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/logging.h"
#include "tuple/schema.h"
#include "tuple/value.h"

namespace tcq {

/// A row flowing through the dataflow. The cell payload is immutable and
/// shared (joins concatenate payloads into fresh tuples; copies of a Tuple
/// alias the same cells), while the timestamp rides along by value.
///
/// Besides the application timestamp, a tuple carries an engine-assigned
/// arrival sequence number (`seq`). Symmetric joins use it for duplicate
/// avoidance: a probe may only match stored tuples that arrived strictly
/// earlier, so each join result is produced by exactly one arrival order.
/// Per §4.2.2 of the paper, intermediate tuples inside an Eddy carry extra
/// routing state ("enhanced surrogate objects"); that state lives in
/// eddy::RoutedTuple, keeping this type a plain data carrier.
class Tuple {
 public:
  /// An empty (zero-arity) tuple with timestamp 0.
  Tuple() : cells_(EmptyCells()), ts_(0) {}

  Tuple(std::vector<Value> cells, Timestamp ts)
      : cells_(std::make_shared<const std::vector<Value>>(std::move(cells))),
        ts_(ts) {}

  static Tuple Make(std::vector<Value> cells, Timestamp ts = 0) {
    return Tuple(std::move(cells), ts);
  }

  size_t arity() const { return cells_->size(); }
  const Value& cell(size_t i) const {
    TCQ_DCHECK(i < cells_->size());
    return (*cells_)[i];
  }
  const std::vector<Value>& cells() const { return *cells_; }

  Timestamp timestamp() const { return ts_; }
  void set_timestamp(Timestamp ts) { ts_ = ts; }

  /// Arrival sequence number; 0 = never stamped by an engine.
  int64_t seq() const { return seq_; }
  void set_seq(int64_t seq) { seq_ = seq; }

  /// Concatenates the cells of `left` then `right`. The result's timestamp
  /// and seq are the max of the two (the join output is "complete" only
  /// once its youngest constituent has arrived).
  static Tuple Concat(const Tuple& left, const Tuple& right) {
    std::vector<Value> cells;
    cells.reserve(left.arity() + right.arity());
    cells.insert(cells.end(), left.cells().begin(), left.cells().end());
    cells.insert(cells.end(), right.cells().begin(), right.cells().end());
    Tuple out(std::move(cells),
              left.ts_ > right.ts_ ? left.ts_ : right.ts_);
    out.seq_ = left.seq_ > right.seq_ ? left.seq_ : right.seq_;
    return out;
  }

  /// Projects the given cell indexes into a new tuple (same timestamp/seq).
  Tuple Project(const std::vector<size_t>& indexes) const {
    std::vector<Value> cells;
    cells.reserve(indexes.size());
    for (size_t i : indexes) cells.push_back(cell(i));
    Tuple out(std::move(cells), ts_);
    out.seq_ = seq_;
    return out;
  }

  bool operator==(const Tuple& other) const {
    return ts_ == other.ts_ && *cells_ == *other.cells_;
  }

  std::string ToString() const;

 private:
  static const std::shared_ptr<const std::vector<Value>>& EmptyCells();

  std::shared_ptr<const std::vector<Value>> cells_;
  Timestamp ts_;
  int64_t seq_ = 0;
};

using TupleVector = std::vector<Tuple>;

}  // namespace tcq

#endif  // TCQ_TUPLE_TUPLE_H_
