#ifndef TCQ_TUPLE_TUPLE_H_
#define TCQ_TUPLE_TUPLE_H_

#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/logging.h"
#include "common/object_pool.h"
#include "tuple/schema.h"
#include "tuple/value.h"

namespace tcq {

/// A row flowing through the dataflow. The cell payload is immutable and
/// shared (joins concatenate payloads into fresh tuples; copies of a Tuple
/// alias the same cells), while the timestamp rides along by value.
///
/// The cells live in ONE refcounted heap block (control block + Value
/// array allocated together via std::make_shared<Value[]>), so creating,
/// concatenating or projecting a tuple costs a single allocation — the
/// dominant per-tuple cost on the ingest hot path once queue and routing
/// overheads are batched away (§4.3 "adapting adaptivity").
///
/// Besides the application timestamp, a tuple carries an engine-assigned
/// arrival sequence number (`seq`). Symmetric joins use it for duplicate
/// avoidance: a probe may only match stored tuples that arrived strictly
/// earlier, so each join result is produced by exactly one arrival order.
///
/// A tuple also carries a retraction sign (CEDR-style, DESIGN.md §15): a
/// retraction is the compensating anti-tuple of a previously emitted
/// assertion with the same payload and timestamp. Signs combine by XOR
/// under Concat/merge — a join result composed of one retraction side is
/// itself a retraction — and are preserved by Project so they survive
/// egress projection.
/// Per §4.2.2 of the paper, intermediate tuples inside an Eddy carry extra
/// routing state ("enhanced surrogate objects"); that state lives in
/// eddy::RoutedTuple, keeping this type a plain data carrier.
class Tuple {
 public:
  /// An empty (zero-arity) tuple with timestamp 0.
  Tuple() : ts_(0) {}

  Tuple(std::vector<Value> cells, Timestamp ts)
      : ts_(ts) {
    AllocCells(cells.size());
    Value* out = MutableCells();
    for (size_t i = 0; i < cells.size(); ++i) out[i] = std::move(cells[i]);
  }

  static Tuple Make(std::vector<Value> cells, Timestamp ts = 0) {
    return Tuple(std::move(cells), ts);
  }

  Tuple(const Tuple&) = default;
  Tuple& operator=(const Tuple&) = default;

  // Explicit move ops: the defaulted ones would null cells_ but leave
  // size_ behind, so a moved-from tuple's arity() would lie and cell()
  // would dereference a null block. Keep the moved-from state a valid
  // empty tuple instead (producers retrying a rejected batch suffix
  // depend on moved-from == empty, never corrupt).
  Tuple(Tuple&& other) noexcept
      : cells_(std::move(other.cells_)),
        size_(std::exchange(other.size_, 0)),
        ts_(other.ts_),
        seq_(other.seq_),
        retraction_(std::exchange(other.retraction_, false)) {}
  Tuple& operator=(Tuple&& other) noexcept {
    cells_ = std::move(other.cells_);
    size_ = std::exchange(other.size_, 0);
    ts_ = other.ts_;
    seq_ = other.seq_;
    retraction_ = std::exchange(other.retraction_, false);
    return *this;
  }

  /// Single-allocation construction: allocates `n` NULL cells, hands the
  /// raw array to `fill` for in-place population, and only then shares
  /// the block. This is the hot-path factory for Concat/Project/Widen —
  /// no intermediate std::vector<Value>, no copy of the built tuple.
  template <typename FillFn>
  static Tuple Build(size_t n, Timestamp ts, FillFn&& fill) {
    Tuple t;
    t.ts_ = ts;
    t.AllocCells(n);
    if (n > 0) fill(t.MutableCells());
    return t;
  }

  size_t arity() const { return size_; }
  const Value& cell(size_t i) const {
    TCQ_DCHECK(i < size_);
    return cells_[i];
  }
  /// View of all cells. The underlying block is shared between copies:
  /// cells().data() is identical for tuples aliasing the same payload.
  std::span<const Value> cells() const { return {cells_.get(), size_}; }

  Timestamp timestamp() const { return ts_; }
  void set_timestamp(Timestamp ts) { ts_ = ts; }

  /// Arrival sequence number; 0 = never stamped by an engine.
  int64_t seq() const { return seq_; }
  void set_seq(int64_t seq) { seq_ = seq; }

  /// Retraction sign: true = this tuple cancels a previously emitted
  /// assertion with the same payload and timestamp.
  bool retraction() const { return retraction_; }
  void set_retraction(bool retraction) { retraction_ = retraction; }

  /// Payload identity ignoring the sign: same timestamp and cells. This is
  /// the matching rule a retraction uses to find the assertion it cancels
  /// (archives, SteMs).
  bool PayloadEquals(const Tuple& other) const {
    if (ts_ != other.ts_ || size_ != other.size_) return false;
    if (cells_.get() == other.cells_.get()) return true;
    for (size_t i = 0; i < size_; ++i) {
      if (cells_[i] != other.cells_[i]) return false;
    }
    return true;
  }

  /// Concatenates the cells of `left` then `right`. The result's timestamp
  /// and seq are the max of the two (the join output is "complete" only
  /// once its youngest constituent has arrived).
  static Tuple Concat(const Tuple& left, const Tuple& right) {
    Tuple out = Build(left.size_ + right.size_,
                      left.ts_ > right.ts_ ? left.ts_ : right.ts_,
                      [&](Value* cells) {
                        for (size_t i = 0; i < left.size_; ++i) {
                          cells[i] = left.cells_[i];
                        }
                        for (size_t i = 0; i < right.size_; ++i) {
                          cells[left.size_ + i] = right.cells_[i];
                        }
                      });
    out.seq_ = left.seq_ > right.seq_ ? left.seq_ : right.seq_;
    out.retraction_ = left.retraction_ != right.retraction_;  // XOR of signs.
    return out;
  }

  /// Projects the given cell indexes into a new tuple (same
  /// timestamp/seq/sign).
  Tuple Project(const std::vector<size_t>& indexes) const {
    Tuple out = Build(indexes.size(), ts_, [&](Value* cells) {
      for (size_t i = 0; i < indexes.size(); ++i) {
        cells[i] = cell(indexes[i]);
      }
    });
    out.seq_ = seq_;
    out.retraction_ = retraction_;
    return out;
  }

  bool operator==(const Tuple& other) const {
    return retraction_ == other.retraction_ && PayloadEquals(other);
  }

  /// Approximate resident heap footprint: the tuple itself, its cell
  /// block, and any string payloads. Aliasing copies each count the
  /// shared block in full — this feeds resident-memory gauges, where an
  /// over-estimate beats an under-estimate.
  size_t ApproxBytes() const {
    size_t n = sizeof(Tuple) + size_ * sizeof(Value);
    for (size_t i = 0; i < size_; ++i) {
      if (cells_[i].type() == ValueType::kString) {
        n += cells_[i].string_value().size();
      }
    }
    return n;
  }

  std::string ToString() const;

 private:
  void AllocCells(size_t n) {
    size_ = n;
    // One heap block: shared_ptr control block + n value-initialized
    // (NULL) Values, fused by allocate_shared's array overload. The
    // block comes from the thread-local BlockPool, so the steady-state
    // build/concat/project churn recycles a handful of size classes
    // instead of hitting the system allocator per tuple (DESIGN.md §14);
    // blocks may be released on a different thread than they were
    // acquired on (tuples cross the sharded exchange), which the pool
    // permits.
    cells_ = n > 0
                 ? std::allocate_shared<Value[]>(PoolAllocator<Value>{}, n)
                 : nullptr;
  }
  /// Only valid between AllocCells and first share of the block.
  Value* MutableCells() {
    return const_cast<Value*>(cells_.get());
  }

  std::shared_ptr<const Value[]> cells_;
  size_t size_ = 0;
  Timestamp ts_;
  int64_t seq_ = 0;
  bool retraction_ = false;
};

/// Which standing (CACQ) queries an injected batch is visible to, by the
/// query's declared consistency level (DESIGN.md §15). With a disorder
/// bound active, a stream's arrivals are injected twice: the raw arrival
/// feed goes to the speculative lane, the reorder-buffer release feed to
/// the delayed lane. kAll is the classic single-feed path (no disorder
/// bound, or no lane split) and keeps every pre-disorder call site's
/// behaviour. Defined here — the bottom of the dependency order — because
/// both the Flux changelog and the CACQ engines carry it.
enum class IngressLane : uint8_t { kAll = 0, kDelayed = 1, kSpeculative = 2 };

using TupleVector = std::vector<Tuple>;

}  // namespace tcq

#endif  // TCQ_TUPLE_TUPLE_H_
