#include "tuple/catalog.h"

namespace tcq {

Status Catalog::RegisterStream(StreamDef def) {
  std::lock_guard<std::mutex> lock(mu_);
  if (defs_.count(def.name) != 0) {
    return Status::AlreadyExists("source already registered: " + def.name);
  }
  if (def.schema == nullptr || def.schema->num_fields() == 0) {
    return Status::InvalidArgument("stream needs a non-empty schema: " +
                                   def.name);
  }
  if (def.timestamp_field >= 0 &&
      static_cast<size_t>(def.timestamp_field) >= def.schema->num_fields()) {
    return Status::InvalidArgument("timestamp_field out of range for " +
                                   def.name);
  }
  defs_.emplace(def.name, std::move(def));
  return Status::OK();
}

Status Catalog::RegisterTable(StreamDef def, TupleVector rows) {
  def.is_table = true;
  const std::string name = def.name;
  TCQ_RETURN_NOT_OK(RegisterStream(std::move(def)));
  std::lock_guard<std::mutex> lock(mu_);
  table_rows_.emplace(name, std::move(rows));
  return Status::OK();
}

Result<StreamDef> Catalog::GetStream(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = defs_.find(name);
  if (it == defs_.end()) {
    return Status::NotFound("unknown stream or table: " + name);
  }
  return it->second;
}

Result<TupleVector> Catalog::GetTableRows(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = table_rows_.find(name);
  if (it == table_rows_.end()) {
    return Status::NotFound("not a static table: " + name);
  }
  return it->second;
}

bool Catalog::Exists(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return defs_.count(name) != 0;
}

std::vector<std::string> Catalog::ListSources() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(defs_.size());
  for (const auto& [name, def] : defs_) names.push_back(name);
  return names;
}

}  // namespace tcq
