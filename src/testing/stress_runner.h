#ifndef TCQ_TESTING_STRESS_RUNNER_H_
#define TCQ_TESTING_STRESS_RUNNER_H_

#include <chrono>
#include <cstdint>
#include <functional>

#include "common/rng.h"

namespace tcq {

/// Runs a body concurrently on real threads under a wall-clock budget —
/// the harness behind the stress_* suite's interleaving tests. Threads
/// start together (barrier), each owns a child Rng seeded from the parent
/// seed and its thread index (so per-thread decision streams are
/// reproducible even though cross-thread interleaving is not), and each
/// re-invokes the body until the budget expires.
///
/// The body runs under ThreadSanitizer in the stress CI configuration;
/// any lock-discipline violation in the code under test surfaces as a
/// TSan report rather than a flaky assertion.
class StressRunner {
 public:
  struct Options {
    size_t num_threads = 4;
    std::chrono::milliseconds budget{200};
    uint64_t seed = 1;
  };

  explicit StressRunner(Options options) : options_(options) {}

  StressRunner(const StressRunner&) = delete;
  StressRunner& operator=(const StressRunner&) = delete;

  /// `body(thread_index, rng)` is called repeatedly on every thread until
  /// the budget expires. Returns total body invocations across threads.
  /// Exceptions escaping the body are not handled (they abort the test,
  /// which is the desired failure mode).
  uint64_t Run(const std::function<void(size_t, Rng&)>& body);

  /// One-shot convenience: each thread runs `body(thread_index, rng)`
  /// exactly once (for scenarios that loop internally). Returns when all
  /// threads have finished; the budget is not enforced here.
  void RunOnce(const std::function<void(size_t, Rng&)>& body);

 private:
  const Options options_;
};

}  // namespace tcq

#endif  // TCQ_TESTING_STRESS_RUNNER_H_
