#include "testing/fault_injector.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"

namespace tcq {

FaultInjector::FaultInjector(uint64_t seed) : rng_(seed) {}

void FaultInjector::Record(std::string event) {
  std::lock_guard<std::mutex> lock(mu_);
  trace_.push_back(std::move(event));
}

std::vector<std::string> FaultInjector::Trace() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trace_;
}

size_t FaultInjector::TraceSize() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trace_.size();
}

// One MakeQueueHooks call's shared state: a child Rng plus its own lock so
// that concurrent queue operations serialize their draws (the decision
// sequence is seed-deterministic; assignment to operations follows thread
// interleaving).
struct FaultInjector::HookState {
  std::mutex mu;
  Rng rng{0};
  QueueFaultProfile enq;
  QueueFaultProfile deq;
  FaultInjector* owner = nullptr;
};

namespace {

QueueFaultDecision DrawQueueFault(
    Rng* rng, const FaultInjector::QueueFaultProfile& p) {
  QueueFaultDecision d;
  // One uniform draw partitions [0,1) into drop|delay|reorder|none bands,
  // a second draw supplies the argument. Two draws per decision keeps the
  // trace alignment stable across profile changes.
  const double u = rng->NextDouble();
  const uint64_t arg = rng->Next();
  if (u < p.drop) {
    d.action = QueueFaultDecision::Action::kDrop;
  } else if (u < p.drop + p.delay) {
    d.action = QueueFaultDecision::Action::kDelay;
    d.arg = p.max_delay == 0 ? 1 : 1 + arg % p.max_delay;
  } else if (u < p.drop + p.delay + p.reorder) {
    d.action = QueueFaultDecision::Action::kReorder;
    d.arg = arg;
  }
  return d;
}

const char* ActionCode(QueueFaultDecision::Action a) {
  switch (a) {
    case QueueFaultDecision::Action::kNone:
      return "none";
    case QueueFaultDecision::Action::kDrop:
      return "drop";
    case QueueFaultDecision::Action::kDelay:
      return "delay";
    case QueueFaultDecision::Action::kReorder:
      return "reorder";
  }
  return "?";
}

}  // namespace

std::shared_ptr<QueueFaultHooks> FaultInjector::MakeQueueHooks(
    const QueueFaultProfile& enqueue, const QueueFaultProfile& dequeue) {
  auto state = std::make_shared<HookState>();
  {
    std::lock_guard<std::mutex> lock(mu_);
    state->rng.Seed(rng_.Next());
    hooks_.push_back(state);
  }
  state->enq = enqueue;
  state->deq = dequeue;
  state->owner = this;

  auto hooks = std::make_shared<QueueFaultHooks>();
  hooks->on_enqueue = [state] {
    QueueFaultDecision d;
    {
      std::lock_guard<std::mutex> lock(state->mu);
      d = DrawQueueFault(&state->rng, state->enq);
    }
    if (d.action != QueueFaultDecision::Action::kNone) {
      state->owner->Record(std::string("enq:") + ActionCode(d.action));
    }
    return d;
  };
  hooks->on_dequeue = [state] {
    QueueFaultDecision d;
    {
      std::lock_guard<std::mutex> lock(state->mu);
      d = DrawQueueFault(&state->rng, state->deq);
    }
    if (d.action != QueueFaultDecision::Action::kNone) {
      state->owner->Record(std::string("deq:") + ActionCode(d.action));
    }
    return d;
  };
  return hooks;
}

std::vector<FaultInjector::NodeKill> FaultInjector::MakeKillSchedule(
    size_t kills, size_t num_nodes, uint64_t horizon) {
  TCQ_CHECK(kills <= num_nodes)
      << "cannot kill more distinct nodes than exist";
  TCQ_CHECK(kills <= horizon) << "need one tick per kill";
  std::vector<NodeKill> schedule;
  std::unordered_set<uint64_t> used_ticks;
  std::unordered_set<size_t> used_nodes;
  std::lock_guard<std::mutex> lock(mu_);
  while (schedule.size() < kills) {
    const uint64_t tick = 1 + rng_.Next() % horizon;
    const size_t node = static_cast<size_t>(rng_.Next() % num_nodes);
    if (!used_ticks.insert(tick).second) continue;
    if (!used_nodes.insert(node).second) {
      used_ticks.erase(tick);
      continue;
    }
    schedule.push_back(NodeKill{tick, node});
    trace_.push_back("kill:t=" + std::to_string(tick) +
                     ",n=" + std::to_string(node));
  }
  std::sort(schedule.begin(), schedule.end(),
            [](const NodeKill& a, const NodeKill& b) {
              return a.tick < b.tick;
            });
  return schedule;
}

TupleVector FaultInjector::Perturb(const TupleVector& input,
                                   const StreamFaultProfile& profile,
                                   int ts_field) {
  TupleVector out;
  out.reserve(input.size() + input.size() / 4);
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < input.size(); ++i) {
    Tuple t = input[i];
    const double u = rng_.NextDouble();
    if (u < profile.duplicate) {
      trace_.push_back("stream:dup@" + std::to_string(i));
      out.push_back(t);
      out.push_back(t);
    } else if (u < profile.duplicate + profile.late) {
      trace_.push_back("stream:late@" + std::to_string(i));
      const Timestamp ts = t.timestamp() - profile.late_by;
      t.set_timestamp(ts);
      if (ts_field >= 0) {
        std::vector<Value> cells;
        cells.reserve(t.arity());
        for (size_t c = 0; c < t.arity(); ++c) cells.push_back(t.cell(c));
        cells[static_cast<size_t>(ts_field)] = Value::Int64(ts);
        t = Tuple::Make(std::move(cells), ts);
      }
      out.push_back(std::move(t));
    } else if (u < profile.duplicate + profile.late + profile.swap &&
               i + 1 < input.size()) {
      trace_.push_back("stream:swap@" + std::to_string(i));
      out.push_back(input[i + 1]);
      out.push_back(std::move(t));
      ++i;  // The successor was consumed by the swap.
    } else {
      out.push_back(std::move(t));
    }
  }
  return out;
}

size_t RunScriptedFaults(FluxCluster* cluster,
                         const std::vector<FaultInjector::NodeKill>& script,
                         const std::function<TupleVector(uint64_t)>& feed,
                         uint64_t horizon) {
  size_t processed = 0;
  size_t next_kill = 0;
  for (uint64_t tick = 1; tick <= horizon; ++tick) {
    while (next_kill < script.size() && script[next_kill].tick <= tick) {
      const Status s = cluster->KillNode(script[next_kill].node);
      TCQ_CHECK(s.ok()) << "scripted kill failed: " << s;
      ++next_kill;
    }
    if (feed) {
      const TupleVector batch = feed(tick);
      if (!batch.empty()) cluster->Feed(batch);
    }
    processed += cluster->Tick();
  }
  // Late-scheduled kills (past the feed horizon) still fire, then drain.
  for (; next_kill < script.size(); ++next_kill) {
    const Status s = cluster->KillNode(script[next_kill].node);
    TCQ_CHECK(s.ok()) << "scripted kill failed: " << s;
  }
  cluster->Run();
  return processed;
}

}  // namespace tcq
