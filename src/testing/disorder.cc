#include "testing/disorder.h"

#include <algorithm>
#include <utility>

namespace tcq {

std::vector<Tuple> InjectDisorder(std::vector<Tuple> in,
                                  const DisorderOptions& options) {
  if (options.max_disorder <= 0 && options.violation_rate <= 0.0) return in;
  Rng rng(options.seed);
  // Stable sort by jittered key: ties (including the undisplaced bulk)
  // keep their relative order, so the output is deterministic and the
  // bound argument in the header holds.
  std::vector<std::pair<Timestamp, size_t>> keys;
  keys.reserve(in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    Timestamp key = in[i].timestamp();
    if (options.violation_rate > 0.0 && rng.NextBool(options.violation_rate)) {
      key += options.max_disorder + options.violation_extra;
    } else if (options.max_disorder > 0 && rng.NextBool(options.jitter_rate)) {
      key += rng.NextInt(0, options.max_disorder);
    }
    keys.emplace_back(key, i);
  }
  std::stable_sort(keys.begin(), keys.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  std::vector<Tuple> out;
  out.reserve(in.size());
  for (const auto& [key, i] : keys) out.push_back(std::move(in[i]));
  return out;
}

DisorderedSource::DisorderedSource(std::unique_ptr<TupleSource> inner,
                                   const DisorderOptions& options)
    : schema_(inner->schema()) {
  std::vector<Tuple> all;
  while (auto t = inner->Next()) all.push_back(std::move(*t));
  replay_ = InjectDisorder(std::move(all), options);
}

std::optional<Tuple> DisorderedSource::Next() {
  if (next_ >= replay_.size()) return std::nullopt;
  return replay_[next_++];
}

}  // namespace tcq
