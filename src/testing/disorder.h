#ifndef TCQ_TESTING_DISORDER_H_
#define TCQ_TESTING_DISORDER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "ingress/sources.h"
#include "tuple/tuple.h"

namespace tcq {

/// Deterministic out-of-order feed generator for disorder tests and
/// benches (DESIGN.md §15).
///
/// Each tuple is assigned the sort key `timestamp + jitter` with jitter
/// drawn uniformly from [0, max_disorder], then the feed is stably sorted
/// by key. The resulting arrival sequence provably respects the bound:
/// when a tuple with timestamp t arrives, every earlier arrival has key
/// <= t's key <= t + max_disorder, hence timestamp <= t + max_disorder —
/// so a reorder buffer with the same (or larger) bound never classifies
/// it as a beyond-bound straggler. jitter_rate scales how much of the
/// feed is displaced at all.
///
/// violation_rate > 0 additionally demotes that fraction of tuples into
/// deliberate beyond-bound stragglers: each violator is pushed
/// `max_disorder + violation_extra` keys late, past the bound, to
/// exercise the LatePolicy paths.
struct DisorderOptions {
  Timestamp max_disorder = 0;
  /// Fraction of tuples given a non-zero jitter (1.0 = every tuple).
  double jitter_rate = 1.0;
  /// Fraction of tuples forced beyond the bound (0.0 = none).
  double violation_rate = 0.0;
  /// Extra key displacement for violators (how far past the bound).
  Timestamp violation_extra = 1;
  uint64_t seed = 42;
};

/// Returns `in` re-ordered per `options`. Deterministic in (in, options).
std::vector<Tuple> InjectDisorder(std::vector<Tuple> in,
                                  const DisorderOptions& options);

/// A TupleSource wrapper that drains its inner source eagerly and replays
/// it through InjectDisorder — drop-in disorder for any existing source
/// (StockTickerSource, PacketSource, ...) in PushAll/SourceModule paths.
class DisorderedSource : public TupleSource {
 public:
  DisorderedSource(std::unique_ptr<TupleSource> inner,
                   const DisorderOptions& options);

  const SchemaPtr& schema() const override { return schema_; }
  std::optional<Tuple> Next() override;

 private:
  SchemaPtr schema_;
  std::vector<Tuple> replay_;
  size_t next_ = 0;
};

}  // namespace tcq

#endif  // TCQ_TESTING_DISORDER_H_
