#ifndef TCQ_TESTING_CRASH_INJECTOR_H_
#define TCQ_TESTING_CRASH_INJECTOR_H_

#include <cstdint>
#include <vector>

#include "cacq/sharded_engine.h"
#include "testing/fault_injector.h"

namespace tcq {

/// Deterministic crash-recovery driver for the sharded CACQ engine's
/// process-pair HA (DESIGN.md §13): scripts KillShard/FailoverShard pairs
/// against feed-slice boundaries the way RunScriptedFaults scripts node
/// kills against FluxCluster ticks. The schedule derives from a
/// FaultInjector seed, so one seed reproduces the entire crash pattern —
/// and the failover-equivalence suite can assert byte-identical results
/// across schedules.
class CrashInjector {
 public:
  struct Options {
    /// Crashes to script across the run. Each lands on a distinct shard
    /// at a distinct slice (FaultInjector::MakeKillSchedule), so it must
    /// be <= min(num_shards, horizon).
    size_t kills = 1;
    /// Feed-slice horizon the kills are drawn from, [1, horizon].
    uint64_t horizon = 10;
  };

  CrashInjector(uint64_t seed, size_t num_shards, Options options);

  CrashInjector(const CrashInjector&) = delete;
  CrashInjector& operator=(const CrashInjector&) = delete;

  /// Kills `shard` and immediately fails it over: requests the kill,
  /// waits for the worker to exit at its task boundary, then promotes the
  /// standby (blocking until recovery completes). The engine must be
  /// running with Options::num_replicas > 0. Crashes the test (CHECK) on
  /// any recovery failure — recovery is the property under test.
  static void CrashAndRecover(ShardedEngine* engine, size_t shard);

  /// Fires every scripted kill scheduled at `slice` (call once per feed
  /// slice, slices counted from 1). Returns how many fired.
  size_t MaybeCrash(ShardedEngine* engine, uint64_t slice);

  const std::vector<FaultInjector::NodeKill>& schedule() const {
    return schedule_;
  }
  uint64_t crashes_fired() const { return fired_; }

 private:
  FaultInjector injector_;
  std::vector<FaultInjector::NodeKill> schedule_;
  size_t next_ = 0;  ///< First schedule entry not yet fired.
  uint64_t fired_ = 0;
};

}  // namespace tcq

#endif  // TCQ_TESTING_CRASH_INJECTOR_H_
