#include "testing/stress_runner.h"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "common/logging.h"

namespace tcq {

namespace {

/// Minimal reusable start barrier (std::barrier needs libstdc++ 11's
/// <barrier>; this keeps the dependency surface small).
class StartGate {
 public:
  explicit StartGate(size_t parties) : waiting_for_(parties) {}

  void ArriveAndWait() {
    std::unique_lock<std::mutex> lock(mu_);
    if (--waiting_for_ == 0) {
      lock.unlock();
      cv_.notify_all();
      return;
    }
    cv_.wait(lock, [&] { return waiting_for_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  size_t waiting_for_;
};

}  // namespace

uint64_t StressRunner::Run(const std::function<void(size_t, Rng&)>& body) {
  TCQ_CHECK(options_.num_threads > 0);
  StartGate gate(options_.num_threads);
  std::atomic<uint64_t> iterations{0};
  std::atomic<bool> expired{false};
  std::vector<std::thread> threads;
  threads.reserve(options_.num_threads);
  for (size_t i = 0; i < options_.num_threads; ++i) {
    threads.emplace_back([&, i] {
      Rng rng(options_.seed * 0x9E3779B97F4A7C15ULL + i);
      gate.ArriveAndWait();
      while (!expired.load(std::memory_order_acquire)) {
        body(i, rng);
        iterations.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::this_thread::sleep_for(options_.budget);
  expired.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  return iterations.load();
}

void StressRunner::RunOnce(const std::function<void(size_t, Rng&)>& body) {
  TCQ_CHECK(options_.num_threads > 0);
  StartGate gate(options_.num_threads);
  std::vector<std::thread> threads;
  threads.reserve(options_.num_threads);
  for (size_t i = 0; i < options_.num_threads; ++i) {
    threads.emplace_back([&, i] {
      Rng rng(options_.seed * 0x9E3779B97F4A7C15ULL + i);
      gate.ArriveAndWait();
      body(i, rng);
    });
  }
  for (auto& t : threads) t.join();
}

}  // namespace tcq
