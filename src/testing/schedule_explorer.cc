#include "testing/schedule_explorer.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace tcq {

ScheduleExplorer::ScheduleExplorer(uint64_t seed)
    : ScheduleExplorer(seed, Options()) {}

ScheduleExplorer::ScheduleExplorer(uint64_t seed, Options options)
    : rng_(seed), options_(std::move(options)) {
  TCQ_CHECK(!options_.quanta.empty());
  TCQ_CHECK(options_.trials > 0);
}

std::string ScheduleExplorer::Describe(const Schedule& s) {
  std::string out = "order=[";
  for (size_t i = 0; i < s.order.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(s.order[i]);
  }
  out += "] quantum=" + std::to_string(s.quantum) +
         " trial_seed=" + std::to_string(s.trial_seed);
  return out;
}

Result<std::string> ScheduleExplorer::Explore(size_t num_modules,
                                              const TrialFn& fn) {
  TCQ_CHECK(num_modules > 0);
  schedules_.clear();
  schedules_.reserve(options_.trials);

  std::string reference;
  for (size_t trial = 0; trial < options_.trials; ++trial) {
    Schedule s;
    s.order.resize(num_modules);
    std::iota(s.order.begin(), s.order.end(), 0u);
    if (trial > 0) {
      // Trial 0 runs the identity schedule as the reference.
      std::shuffle(s.order.begin(), s.order.end(), rng_);
    }
    s.quantum = options_.quanta[rng_.NextBounded(options_.quanta.size())];
    s.trial_seed = rng_.Next();
    schedules_.push_back(s);

    const std::string fingerprint = fn(s);
    if (trial == 0) {
      reference = fingerprint;
    } else if (fingerprint != reference) {
      return Status::Internal(
          "schedule-dependent result: trial " + std::to_string(trial) +
          " {" + Describe(s) + "} produced \"" + fingerprint +
          "\" but reference {" + Describe(schedules_[0]) +
          "} produced \"" + reference + "\"");
    }
  }
  return reference;
}

}  // namespace tcq
