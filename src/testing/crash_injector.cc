#include "testing/crash_injector.h"

#include <chrono>
#include <thread>

#include "common/logging.h"

namespace tcq {

CrashInjector::CrashInjector(uint64_t seed, size_t num_shards,
                             Options options)
    : injector_(seed),
      schedule_(injector_.MakeKillSchedule(options.kills, num_shards,
                                           options.horizon)) {}

void CrashInjector::CrashAndRecover(ShardedEngine* engine, size_t shard) {
  const Status killed = engine->KillShard(shard);
  TCQ_CHECK(killed.ok()) << killed.ToString();
  // The worker observes the kill at its next task boundary (it polls the
  // flag even when idle), so this always terminates.
  while (engine->shard_alive(shard)) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  const Status recovered = engine->FailoverShard(shard);
  TCQ_CHECK(recovered.ok()) << recovered.ToString();
}

size_t CrashInjector::MaybeCrash(ShardedEngine* engine, uint64_t slice) {
  size_t count = 0;
  while (next_ < schedule_.size() && schedule_[next_].tick <= slice) {
    CrashAndRecover(engine, schedule_[next_].node);
    ++next_;
    ++fired_;
    ++count;
  }
  return count;
}

}  // namespace tcq
