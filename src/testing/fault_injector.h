#ifndef TCQ_TESTING_FAULT_INJECTOR_H_
#define TCQ_TESTING_FAULT_INJECTOR_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "fjords/queue.h"
#include "flux/flux.h"
#include "tuple/tuple.h"

namespace tcq {

/// Deterministic fault injection for the engine's "uncertain world" test
/// targets (§3, §4.2 of the paper). One FaultInjector owns a seeded
/// tcq::Rng; every fault source derived from it (queue hooks, Flux kill
/// schedules, stream perturbations) draws from child generators seeded by
/// the parent, so a single seed reproduces the entire fault schedule —
/// the property the stress suite's reproducibility assertions rely on.
///
/// Every decision is appended to a trace (a compact human-readable code),
/// letting tests assert that two injectors with the same seed produced
/// byte-identical schedules.
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // -- Fjord queues -------------------------------------------------------

  /// Per-operation fault probabilities for one end of a queue.
  struct QueueFaultProfile {
    double drop = 0.0;
    double delay = 0.0;
    double reorder = 0.0;
    /// Upper bound (inclusive) on the hold-back span of a kDelay.
    size_t max_delay = 4;
  };

  /// Hooks pluggable into QueueOptions::faults. Decisions are drawn from a
  /// dedicated child Rng under a hook-local mutex, so concurrent queue
  /// users observe the same decision SEQUENCE for a given seed (which
  /// operation receives which decision depends on thread interleaving;
  /// single-threaded drivers are fully deterministic). The returned hooks
  /// reference this injector: queues using them must not outlive it.
  std::shared_ptr<QueueFaultHooks> MakeQueueHooks(
      const QueueFaultProfile& enqueue, const QueueFaultProfile& dequeue);

  // -- Flux clusters ------------------------------------------------------

  /// One scripted machine fault: kill `node` at tick boundary `tick`.
  struct NodeKill {
    uint64_t tick;
    size_t node;
  };

  /// Draws `kills` node failures at distinct ticks in [1, horizon] over
  /// distinct nodes in [0, num_nodes), sorted by tick. Requires
  /// kills <= num_nodes and kills <= horizon.
  std::vector<NodeKill> MakeKillSchedule(size_t kills, size_t num_nodes,
                                         uint64_t horizon);

  // -- Stream ingress -----------------------------------------------------

  /// Perturbations applied to an ordered tuple sequence before it is fed
  /// to Server::Push / PSoup::OnData.
  struct StreamFaultProfile {
    double duplicate = 0.0;  ///< Tuple delivered twice back-to-back.
    double late = 0.0;       ///< Timestamp pushed `late_by` behind.
    double swap = 0.0;       ///< Tuple swapped with its successor.
    Timestamp late_by = 5;
  };

  /// Returns `input` with duplicates / late timestamps / adjacent swaps
  /// injected per the profile. `ts_field` >= 0 rewrites that cell for late
  /// tuples (and keeps Tuple::timestamp() in sync); with ts_field < 0 only
  /// the tuple timestamp is rewritten. Deterministic in the seed.
  TupleVector Perturb(const TupleVector& input,
                      const StreamFaultProfile& profile, int ts_field);

  // -- Introspection ------------------------------------------------------

  /// All decisions drawn so far, in draw order, as compact codes (e.g.
  /// "enq:drop", "kill:t=12,n=3", "stream:late@7"). Thread-safe snapshot.
  std::vector<std::string> Trace() const;
  size_t TraceSize() const;

 private:
  struct HookState;  // Shared state behind one MakeQueueHooks result.

  void Record(std::string event);

  mutable std::mutex mu_;
  Rng rng_;
  std::vector<std::string> trace_;
  /// Keeps hook state alive as long as the injector (queues hold weak
  /// copies through the std::function captures' shared_ptr).
  std::vector<std::shared_ptr<HookState>> hooks_;
};

/// Drives a FluxCluster deterministically through `horizon` ticks: before
/// each tick the feeder's batch for that tick (possibly empty) is routed
/// in, and every scripted kill whose tick has arrived fires at the tick
/// boundary — machine faults land mid-stream, exactly the §2.4 recovery
/// scenario. After the horizon the cluster runs until drained. Returns
/// total tuples processed.
size_t RunScriptedFaults(FluxCluster* cluster,
                         const std::vector<FaultInjector::NodeKill>& script,
                         const std::function<TupleVector(uint64_t)>& feed,
                         uint64_t horizon);

}  // namespace tcq

#endif  // TCQ_TESTING_FAULT_INJECTOR_H_
