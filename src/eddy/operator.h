#ifndef TCQ_EDDY_OPERATOR_H_
#define TCQ_EDDY_OPERATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/bitset.h"
#include "eddy/routed_tuple.h"
#include "telemetry/metrics.h"

namespace tcq {

/// Outcome of routing one tuple to one operator.
struct EddyOpResult {
  /// The input tuple survives and continues routing (true for filters that
  /// pass, for SteM builds, etc.). When false the input is consumed: a
  /// filter dropped it, or a probe absorbed it (its matches live on).
  bool pass = false;
  /// Newly generated tuples (join matches). Each re-enters the Eddy; the
  /// Eddy recomputes their done-sets from their source composition.
  std::vector<RoutedTuple> outputs;
};

/// A module connected to an Eddy (§2.2). Operators are commutative
/// dataflow steps — selections, SteM builds/probes, grouped filters —
/// that the Eddy is free to order per tuple.
class EddyOperator {
 public:
  explicit EddyOperator(std::string name) : name_(std::move(name)) {}
  virtual ~EddyOperator() = default;

  EddyOperator(const EddyOperator&) = delete;
  EddyOperator& operator=(const EddyOperator&) = delete;

  const std::string& name() const { return name_; }

  /// True when this operator applies to tuples composed of exactly the
  /// given source set. A tuple completes once every applicable operator is
  /// in its done-set.
  virtual bool Eligible(const SmallBitset& sources) const = 0;

  /// Processes one tuple. Must be deterministic given operator state.
  virtual EddyOpResult Process(RoutedTuple& rt) = 0;

  /// Relative per-tuple cost hint (1 = cheap hash probe). Policies combine
  /// this with observed selectivity; synthetic-cost operators used by the
  /// adaptivity benchmarks override it.
  virtual double CostHint() const { return 1.0; }

  /// True for join probes (SteM probe, remote-index probe). A tuple visits
  /// exactly one join probe: after that visit all probe operators are
  /// marked done for it, and its match outputs (which have the probes
  /// cleared again) carry the remaining join work. Combined with
  /// arrival-sequence dedup this yields each join result exactly once,
  /// independent of routing order [MSHR02].
  virtual bool IsJoinProbe() const { return false; }

 private:
  std::string name_;
};

using EddyOperatorPtr = std::shared_ptr<EddyOperator>;

/// Per-operator routing statistics the Eddy maintains and policies read.
/// The counters are telemetry primitives (relaxed atomics), so snapshot
/// readers — KnobController, Server::SnapshotMetrics, the tcq.metrics
/// introspection stream — can observe them without synchronizing with
/// the routing thread; existing field-style call sites read through the
/// Counter's implicit conversion. `tickets` stays a plain double: it is
/// policy-private adaptivity state, mutated only on the routing thread.
struct EddyOpStats {
  Counter routed;    ///< Tuples routed to the operator.
  Counter passed;    ///< Inputs that survived (pass == true).
  Counter produced;  ///< New tuples generated.
  /// Lottery tickets [AH00]: credited on consumption, debited on return,
  /// decayed periodically so the policy tracks drift.
  double tickets = 1.0;

  /// Observed pass rate (selectivity); optimistic 1.0 before evidence.
  double PassRate() const {
    const uint64_t r = routed.value();
    return r == 0 ? 1.0
                  : static_cast<double>(passed.value()) /
                        static_cast<double>(r);
  }
};

}  // namespace tcq

#endif  // TCQ_EDDY_OPERATOR_H_
