#ifndef TCQ_EDDY_POLICY_H_
#define TCQ_EDDY_POLICY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "eddy/operator.h"

namespace tcq {

/// Chooses which eligible operator a tuple visits next. The policy sees
/// per-operator statistics that the Eddy maintains (tickets, pass rates,
/// cost hints) and is consulted once per routing decision — or once per
/// batch when the batching knob (§4.3) is turned up.
class RoutingPolicy {
 public:
  virtual ~RoutingPolicy() = default;
  virtual const char* name() const = 0;

  /// Picks one of `eligible` (indexes into the Eddy's operator list;
  /// non-empty). `stats[i]` / `cost_hint[i]` describe operator i.
  virtual size_t Choose(const std::vector<size_t>& eligible,
                        const std::vector<EddyOpStats>& stats,
                        const std::vector<double>& cost_hints) = 0;

  /// Feedback after the visit: tuple was routed to `op`; `passed` tells
  /// whether the input survived. Default updates lottery tickets.
  virtual void Observe(size_t op, bool passed,
                       std::vector<EddyOpStats>* stats);
};

/// Static-plan baseline: always the first eligible operator in a fixed
/// priority order. With priorities matching a classic optimizer's choice
/// this reproduces a conventional query plan inside the Eddy harness.
class FixedPolicy : public RoutingPolicy {
 public:
  /// `priority[i]` = rank of operator i (lower routes earlier).
  explicit FixedPolicy(std::vector<size_t> priority)
      : priority_(std::move(priority)) {}
  const char* name() const override { return "fixed"; }
  size_t Choose(const std::vector<size_t>& eligible,
                const std::vector<EddyOpStats>& stats,
                const std::vector<double>& cost_hints) override;

 private:
  std::vector<size_t> priority_;
};

/// Uniform-random routing: the "no information" floor.
class RandomPolicy : public RoutingPolicy {
 public:
  explicit RandomPolicy(uint64_t seed = 7) : rng_(seed) {}
  const char* name() const override { return "random"; }
  size_t Choose(const std::vector<size_t>& eligible,
                const std::vector<EddyOpStats>& stats,
                const std::vector<double>& cost_hints) override;

 private:
  Rng rng_;
};

/// Lottery scheduling from [AH00]: each operator holds tickets — credited
/// when a tuple is routed to it, debited when the tuple is returned
/// (passes). Selective operators accumulate tickets and win more lotteries,
/// so tuples visit them first. Tickets decay by `decay` every
/// `decay_interval` routings, keeping a finite horizon so the policy
/// re-adapts when selectivities drift mid-stream. Ticket weight is divided
/// by the operator's cost hint so expensive operators are deferred.
class LotteryPolicy : public RoutingPolicy {
 public:
  struct Options {
    double decay = 0.9;
    uint64_t decay_interval = 128;
    /// Exploration floor: minimum effective weight for any operator, so a
    /// starved operator keeps getting sampled and drift is detected.
    double exploration = 0.05;
    /// Ticket cap: bounds how much past selectivity evidence accumulates,
    /// so a drift is overtaken in O(cap) observations instead of O(all
    /// history) — the finite-horizon behaviour [AH00]'s windowed lottery
    /// achieves.
    double max_tickets = 200.0;
  };

  explicit LotteryPolicy(uint64_t seed = 7) : LotteryPolicy(seed, Options()) {}
  LotteryPolicy(uint64_t seed, Options options)
      : rng_(seed), options_(options) {}

  const char* name() const override { return "lottery"; }
  size_t Choose(const std::vector<size_t>& eligible,
                const std::vector<EddyOpStats>& stats,
                const std::vector<double>& cost_hints) override;
  void Observe(size_t op, bool passed,
               std::vector<EddyOpStats>* stats) override;

 private:
  Rng rng_;
  Options options_;
  uint64_t decisions_ = 0;
  /// Reused across Choose calls — one routing decision per tuple (or per
  /// batch) must not cost a heap allocation.
  std::vector<double> weights_scratch_;
};

std::unique_ptr<RoutingPolicy> MakePolicy(const std::string& name,
                                          uint64_t seed = 7);

}  // namespace tcq

#endif  // TCQ_EDDY_POLICY_H_
