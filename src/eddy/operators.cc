#include "eddy/operators.h"

#include "common/logging.h"

namespace tcq {

namespace {
/// Builds the merged output RoutedTuple for a join match. The probe side's
/// done-set carries over (those operators saw the same cells); operators
/// pending for the stored side remain pending, so join outputs re-check
/// predicates their stored constituent may have skipped.
RoutedTuple MakeJoinOutput(const SourceLayout& layout, const RoutedTuple& rt,
                           size_t target, Tuple merged) {
  RoutedTuple out;
  out.tuple = std::move(merged);
  out.sources = rt.sources;
  out.sources.Set(target);
  out.done = rt.done;
  out.queries = rt.queries;  // Shared-mode lineage narrows downstream.
  (void)layout;
  return out;
}
}  // namespace

// ---------------------------------------------------------------- FilterOp

FilterOp::FilterOp(std::string name, ExprPtr bound_predicate,
                   SmallBitset required)
    : EddyOperator(std::move(name)),
      predicate_(std::move(bound_predicate)),
      required_(std::move(required)) {
  TCQ_CHECK(predicate_ != nullptr);
}

bool FilterOp::Eligible(const SmallBitset& sources) const {
  return sources.Contains(required_);
}

EddyOpResult FilterOp::Process(RoutedTuple& rt) {
  EddyOpResult result;
  const Value keep = predicate_->Eval(rt.tuple);
  result.pass = !keep.is_null() && keep.bool_value();
  return result;
}

// ------------------------------------------------------- SyntheticFilterOp

SyntheticFilterOp::SyntheticFilterOp(std::string name, SmallBitset required,
                                     SelectivityFn selectivity,
                                     double cost_hint, uint64_t seed,
                                     uint64_t spin_work)
    : EddyOperator(std::move(name)),
      required_(std::move(required)),
      selectivity_(std::move(selectivity)),
      cost_hint_(cost_hint),
      rng_(seed),
      spin_work_(spin_work) {}

bool SyntheticFilterOp::Eligible(const SmallBitset& sources) const {
  return sources.Contains(required_);
}

EddyOpResult SyntheticFilterOp::Process(RoutedTuple& rt) {
  (void)rt;
  EddyOpResult result;
  // Optional busy work so wall-clock benches see real per-tuple cost.
  volatile uint64_t sink = 0;
  for (uint64_t i = 0; i < spin_work_; ++i) sink = sink + i * 2654435761ULL;
  const double p = selectivity_(seen_);
  ++seen_;
  result.pass = rng_.NextBool(p);
  return result;
}

// -------------------------------------------------------------- StemBuildOp

StemBuildOp::StemBuildOp(std::string name, size_t source, SteMPtr stem)
    : EddyOperator(std::move(name)), source_(source), stem_(std::move(stem)) {
  TCQ_CHECK(stem_ != nullptr);
}

bool StemBuildOp::Eligible(const SmallBitset& sources) const {
  return sources.Count() == 1 && sources.Test(source_);
}

EddyOpResult StemBuildOp::Process(RoutedTuple& rt) {
  stem_->Insert(rt.tuple);
  EddyOpResult result;
  result.pass = true;
  return result;
}

// -------------------------------------------------------------- StemProbeOp

StemProbeOp::StemProbeOp(std::string name, const SourceLayout* layout,
                         size_t target, SteMPtr target_stem,
                         SmallBitset probe_sources, int probe_key_index,
                         ExprPtr bound_residual, WindowHandlePtr window)
    : EddyOperator(std::move(name)),
      layout_(layout),
      target_(target),
      stem_(std::move(target_stem)),
      probe_sources_(std::move(probe_sources)),
      probe_key_index_(probe_key_index),
      residual_(std::move(bound_residual)),
      window_(std::move(window)) {
  TCQ_CHECK(layout_ != nullptr && stem_ != nullptr);
}

bool StemProbeOp::Eligible(const SmallBitset& sources) const {
  return !sources.Test(target_) && sources.Contains(probe_sources_);
}

EddyOpResult StemProbeOp::Process(RoutedTuple& rt) {
  EddyOpResult result;
  result.pass = true;  // The probe tuple itself continues routing.

  const Timestamp lo =
      window_ ? window_->lo.load(std::memory_order_relaxed) : kMinTimestamp;
  const Timestamp hi =
      window_ ? window_->hi.load(std::memory_order_relaxed) : kMaxTimestamp;

  const Value* key = nullptr;
  Value key_storage;
  if (probe_key_index_ >= 0 && stem_->key_field() >= 0) {
    key_storage = rt.tuple.cell(static_cast<size_t>(probe_key_index_));
    if (key_storage.is_null()) return result;  // No key, no matches.
    key = &key_storage;
  }

  stem_->ProbeCollect(key, lo, hi, [&](const Tuple& stored) {
    // Arrival-order dedup [MSHR02]: only match state that arrived strictly
    // before this tuple's newest constituent, so each join result is
    // produced exactly once no matter how the Eddy ordered the probes.
    if (stored.seq() >= rt.tuple.seq()) return;
    Tuple merged = layout_->MergeSparse(rt.tuple, stored);
    if (residual_ != nullptr) {
      const Value keep = residual_->Eval(merged);
      if (keep.is_null() || !keep.bool_value()) return;
    }
    result.outputs.push_back(
        MakeJoinOutput(*layout_, rt, target_, std::move(merged)));
  });
  return result;
}

// -------------------------------------------------------- RemoteIndexProbeOp

RemoteIndexProbeOp::RemoteIndexProbeOp(std::string name,
                                       const SourceLayout* layout,
                                       size_t target,
                                       std::shared_ptr<RemoteIndex> index,
                                       SmallBitset probe_sources,
                                       int probe_key_index,
                                       ExprPtr bound_residual,
                                       SteMPtr cache_stem)
    : EddyOperator(std::move(name)),
      layout_(layout),
      target_(target),
      index_(std::move(index)),
      probe_sources_(std::move(probe_sources)),
      probe_key_index_(probe_key_index),
      residual_(std::move(bound_residual)),
      cache_(std::move(cache_stem)) {
  TCQ_CHECK(layout_ != nullptr && index_ != nullptr);
  TCQ_CHECK(probe_key_index_ >= 0)
      << "remote index lookups require an equality key";
}

bool RemoteIndexProbeOp::Eligible(const SmallBitset& sources) const {
  return !sources.Test(target_) && sources.Contains(probe_sources_);
}

double RemoteIndexProbeOp::CostHint() const {
  // Remote lookups cost orders of magnitude more than a hash probe; let
  // the cache amortize the hint as its hit rate climbs.
  const uint64_t total = cache_hits_ + cache_misses_;
  const double miss_rate =
      total == 0 ? 1.0
                 : static_cast<double>(cache_misses_) /
                       static_cast<double>(total);
  return 1.0 + miss_rate * 100.0;
}

EddyOpResult RemoteIndexProbeOp::Process(RoutedTuple& rt) {
  EddyOpResult result;
  result.pass = true;

  const Value key = rt.tuple.cell(static_cast<size_t>(probe_key_index_));
  if (key.is_null()) return result;

  auto emit_match = [&](const Tuple& wide_stored) {
    Tuple merged = layout_->MergeSparse(rt.tuple, wide_stored);
    if (residual_ != nullptr) {
      const Value keep = residual_->Eval(merged);
      if (keep.is_null() || !keep.bool_value()) return;
    }
    result.outputs.push_back(
        MakeJoinOutput(*layout_, rt, target_, std::move(merged)));
  };

  if (cache_ != nullptr && cached_keys_.count(key) != 0) {
    ++cache_hits_;
    cache_->ProbeCollect(&key, kMinTimestamp, kMaxTimestamp, emit_match);
    return result;
  }

  ++cache_misses_;
  const TupleVector rows = index_->Lookup(key);
  for (const Tuple& narrow : rows) {
    const Tuple wide = layout_->Widen(target_, narrow);
    if (cache_ != nullptr) cache_->Insert(wide);
    emit_match(wide);
  }
  if (cache_ != nullptr) cached_keys_.insert(key);
  return result;
}

}  // namespace tcq
