#include "eddy/knob_controller.h"

#include <cmath>

#include "common/logging.h"

namespace tcq {

KnobController::KnobController(Eddy* eddy)
    : KnobController(eddy, Options()) {}

KnobController::KnobController(Eddy* eddy, Options options)
    : eddy_(eddy), options_(options) {
  TCQ_CHECK(eddy_ != nullptr);
  TCQ_CHECK(options_.sample_interval > 0);
  TCQ_CHECK(options_.min_batch >= 1);
  TCQ_CHECK(options_.max_batch >= options_.min_batch);
}

bool KnobController::OnTuple() {
  ++tuples_;
  if (tuples_ % options_.sample_interval != 0) return false;
  return Sample();
}

bool KnobController::Sample() {
  const auto& stats = eddy_->op_stats();
  if (windows_.size() < stats.size()) windows_.resize(stats.size());

  bool drifting = false;
  for (size_t i = 0; i < stats.size(); ++i) {
    OpWindow& w = windows_[i];
    const uint64_t routed_delta = stats[i].routed - w.routed;
    const uint64_t passed_delta = stats[i].passed - w.passed;
    w.routed = stats[i].routed;
    w.passed = stats[i].passed;
    if (routed_delta < options_.sample_interval / 8) {
      continue;  // Too few observations this window to judge.
    }
    const double rate = static_cast<double>(passed_delta) /
                        static_cast<double>(routed_delta);
    if (w.last_rate >= 0.0 &&
        std::fabs(rate - w.last_rate) > options_.drift_threshold) {
      drifting = true;
    }
    w.last_rate = rate;
  }

  const size_t batch = eddy_->batch_size();
  if (drifting && batch > options_.min_batch) {
    // Change is fast: drop straight to small groups, decide often (§4.3).
    // Growth back is gradual (doubling), so a false alarm costs little
    // while a real drift gets maximum reaction speed.
    eddy_->set_batch_size(options_.min_batch);
    ++shrinks_;
    return true;
  }
  if (!drifting && batch < options_.max_batch) {
    // Change is slow: amortize decisions over bigger batches.
    eddy_->set_batch_size(std::min(options_.max_batch, batch * 2));
    ++grows_;
    return true;
  }
  return false;
}

}  // namespace tcq
