#ifndef TCQ_EDDY_OPERATORS_H_
#define TCQ_EDDY_OPERATORS_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "eddy/operator.h"
#include "expr/ast.h"
#include "stem/remote_index.h"
#include "stem/stem.h"

namespace tcq {

/// Shared, mutable window bounds for windowed join probes. The window
/// driver advances these as the query's for-loop iterates; probe operators
/// read them on every probe.
struct WindowHandle {
  std::atomic<Timestamp> lo{kMinTimestamp};
  std::atomic<Timestamp> hi{kMaxTimestamp};

  void Set(Timestamp new_lo, Timestamp new_hi) {
    lo.store(new_lo, std::memory_order_relaxed);
    hi.store(new_hi, std::memory_order_relaxed);
  }
};
using WindowHandlePtr = std::shared_ptr<WindowHandle>;

/// A selection: evaluates a predicate bound against the Eddy's full schema.
/// Applies to any tuple whose composition covers the predicate's sources
/// (join outputs re-check predicates their stored side may have skipped —
/// redundant when the build was post-filter, but always correct).
class FilterOp : public EddyOperator {
 public:
  /// `required` = sources whose cells the predicate reads.
  FilterOp(std::string name, ExprPtr bound_predicate, SmallBitset required);

  bool Eligible(const SmallBitset& sources) const override;
  EddyOpResult Process(RoutedTuple& rt) override;

 private:
  ExprPtr predicate_;
  SmallBitset required_;
};

/// A bench/test filter with controllable selectivity and cost. Selectivity
/// is a function of the number of tuples seen so far, so experiments can
/// drift it mid-stream (the E1 adaptivity workload); pass/drop decisions
/// are deterministic in the seed.
class SyntheticFilterOp : public EddyOperator {
 public:
  using SelectivityFn = std::function<double(uint64_t seen)>;

  SyntheticFilterOp(std::string name, SmallBitset required,
                    SelectivityFn selectivity, double cost_hint,
                    uint64_t seed = 13, uint64_t spin_work = 0);

  bool Eligible(const SmallBitset& sources) const override;
  EddyOpResult Process(RoutedTuple& rt) override;
  double CostHint() const override { return cost_hint_; }

  uint64_t seen() const { return seen_; }

 private:
  SmallBitset required_;
  SelectivityFn selectivity_;
  double cost_hint_;
  Rng rng_;
  uint64_t spin_work_;
  uint64_t seen_ = 0;
};

/// SteM build: inserts base tuples of one source into that source's SteM.
/// Only exact single-source tuples build (composites live in the output
/// stream, not in base state).
class StemBuildOp : public EddyOperator {
 public:
  StemBuildOp(std::string name, size_t source, SteMPtr stem);

  bool Eligible(const SmallBitset& sources) const override;
  EddyOpResult Process(RoutedTuple& rt) override;

  const SteMPtr& stem() const { return stem_; }

 private:
  size_t source_;
  SteMPtr stem_;
};

/// SteM probe: joins the routed tuple against the stored tuples of a
/// target source it does not yet contain. Probing uses the hash key when
/// both key columns are configured, otherwise scans with the residual
/// predicate. Matches re-enter the Eddy as merged sparse tuples.
class StemProbeOp : public EddyOperator {
 public:
  /// `probe_sources` = sources that must be present in the tuple (those
  /// carrying `probe_key_index`); `target` = stored side's source index.
  /// `probe_key_index` / residual use full-schema cell indexes; pass
  /// probe_key_index = -1 for scan (band/theta joins).
  StemProbeOp(std::string name, const SourceLayout* layout, size_t target,
              SteMPtr target_stem, SmallBitset probe_sources,
              int probe_key_index, ExprPtr bound_residual,
              WindowHandlePtr window = nullptr);

  bool Eligible(const SmallBitset& sources) const override;
  EddyOpResult Process(RoutedTuple& rt) override;
  bool IsJoinProbe() const override { return true; }

 private:
  const SourceLayout* layout_;
  size_t target_;
  SteMPtr stem_;
  SmallBitset probe_sources_;
  int probe_key_index_;
  ExprPtr residual_;
  WindowHandlePtr window_;
};

/// Asynchronous-style access method over a simulated remote index (§2.2's
/// index join on a TeSS-wrapped source), optionally backed by a cache SteM
/// [HN96]: keys already fetched are answered from the cache without paying
/// remote latency. Together with SteM builds/probes on the same source the
/// Eddy can hybridize index and hash join plans, sharing fetched state.
class RemoteIndexProbeOp : public EddyOperator {
 public:
  RemoteIndexProbeOp(std::string name, const SourceLayout* layout,
                     size_t target, std::shared_ptr<RemoteIndex> index,
                     SmallBitset probe_sources, int probe_key_index,
                     ExprPtr bound_residual, SteMPtr cache_stem = nullptr);

  bool Eligible(const SmallBitset& sources) const override;
  EddyOpResult Process(RoutedTuple& rt) override;
  double CostHint() const override;
  bool IsJoinProbe() const override { return true; }

  uint64_t cache_hits() const { return cache_hits_; }
  uint64_t cache_misses() const { return cache_misses_; }

 private:
  const SourceLayout* layout_;
  size_t target_;
  std::shared_ptr<RemoteIndex> index_;
  SmallBitset probe_sources_;
  int probe_key_index_;
  ExprPtr residual_;
  SteMPtr cache_;
  std::unordered_set<Value, ValueHash> cached_keys_;
  uint64_t cache_hits_ = 0;
  uint64_t cache_misses_ = 0;
};

}  // namespace tcq

#endif  // TCQ_EDDY_OPERATORS_H_
