#ifndef TCQ_EDDY_KNOB_CONTROLLER_H_
#define TCQ_EDDY_KNOB_CONTROLLER_H_

#include <cstdint>
#include <vector>

#include "eddy/eddy.h"

namespace tcq {

/// "Adapting adaptivity" (§4.3): a controller that turns the Eddy's
/// batching knob automatically from observations of selectivity drift.
///
/// The paper: "these knobs serve as the primary mechanism for adapting
/// the adaptivity of TelegraphCQ; implementing them requires ... policies
/// for automatically turning knobs based on rates of change and relative
/// selectivity."
///
/// Mechanism: the controller samples every operator's cumulative pass
/// rate each `sample_interval` tuples and compares the *recent window*
/// pass rate against the previous window's. When any operator's
/// selectivity moved by more than `drift_threshold`, change is fast —
/// the batch size halves (more decisions, faster reaction). When all
/// operators look stable, the batch size doubles (fewer decisions, less
/// overhead), up to `max_batch`.
class KnobController {
 public:
  struct Options {
    size_t sample_interval = 512;  ///< Tuples between samples.
    double drift_threshold = 0.1;  ///< Pass-rate delta that counts as drift.
    size_t min_batch = 1;
    size_t max_batch = 256;
  };

  explicit KnobController(Eddy* eddy);
  KnobController(Eddy* eddy, Options options);

  /// Call once per injected tuple (cheap; does work only at sample
  /// boundaries). Returns true when it adjusted a knob this call.
  bool OnTuple();

  size_t current_batch() const { return eddy_->batch_size(); }
  uint64_t shrinks() const { return shrinks_; }
  uint64_t grows() const { return grows_; }

 private:
  struct OpWindow {
    uint64_t routed = 0;
    uint64_t passed = 0;
    double last_rate = -1.0;  ///< Previous window's pass rate; <0 = none.
  };

  bool Sample();

  Eddy* eddy_;
  Options options_;
  uint64_t tuples_ = 0;
  std::vector<OpWindow> windows_;
  uint64_t shrinks_ = 0;
  uint64_t grows_ = 0;
};

}  // namespace tcq

#endif  // TCQ_EDDY_KNOB_CONTROLLER_H_
