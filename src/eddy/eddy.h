#ifndef TCQ_EDDY_EDDY_H_
#define TCQ_EDDY_EDDY_H_

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/object_pool.h"
#include "eddy/operator.h"
#include "eddy/policy.h"
#include "eddy/routed_tuple.h"

namespace tcq {

/// The Eddy (§2.2, [AH00]): an adaptive tuple router. Tuples injected from
/// sources are routed, one policy decision at a time, through the set of
/// connected operators until every applicable operator has handled them;
/// tuples that then span all of the Eddy's sources are emitted to the sink.
///
/// "Adapting adaptivity" (§4.3) is exposed through two knobs:
///  * batch_size — a routing decision is reused for the next batch_size-1
///    tuples of the same source composition, amortizing decision cost;
///  * fixed_sequence_length — each decision fixes a sequence of up to k
///    operators (ranked by the decision-time ticket snapshot) that the
///    tuple visits without further policy consultation.
class Eddy {
 public:
  struct Options {
    size_t batch_size = 1;
    size_t fixed_sequence_length = 1;
  };

  /// `layout` must outlive the Eddy and is shared with its operators.
  Eddy(const SourceLayout* layout, std::unique_ptr<RoutingPolicy> policy);
  Eddy(const SourceLayout* layout, std::unique_ptr<RoutingPolicy> policy,
       Options options);

  Eddy(const Eddy&) = delete;
  Eddy& operator=(const Eddy&) = delete;

  /// Registers an operator; returns its index. Operators may be added
  /// while the Eddy runs (new queries folding in) — in-flight tuples
  /// simply become eligible for the new operator too.
  ///
  /// `group` >= 0 marks alternative access methods for the same logical
  /// work (e.g. a SteM probe and a remote-index probe into the same
  /// source): when a tuple visits one member, every member is marked done
  /// for it, so alternatives never duplicate results. This is what lets an
  /// Eddy "run both query plans at the same time" (§2.2) without wasted
  /// or repeated matches.
  size_t AddOperator(EddyOperatorPtr op, int group = -1);

  size_t num_operators() const { return ops_.size(); }
  const EddyOperatorPtr& op(size_t i) const { return ops_[i]; }

  /// Sink for completed tuples (source set == all sources). The RoutedTuple
  /// passes through so shared-mode consumers can read its query lineage.
  void SetSink(std::function<void(RoutedTuple&&)> sink) {
    sink_ = std::move(sink);
  }

  /// Shared (CACQ) mode sink: receives EVERY tuple whose routing finished,
  /// whatever its source composition — single-stream selection queries
  /// consume base tuples while join queries consume composites. When set,
  /// this replaces the full-composition sink entirely.
  void SetPartialSink(std::function<void(RoutedTuple&&)> sink) {
    partial_sink_ = std::move(sink);
  }

  /// Injects a narrow source tuple: widened, stamped, routed on Drain().
  void Inject(size_t source, const Tuple& narrow);

  /// Injects a whole same-source batch at once (§4.3 "batching tuples to
  /// amortize per-tuple overhead"): widens and stamps each tuple, and
  /// marks the batch as ONE routing unit — tuples of the batch at the
  /// same routing stage reuse a single policy decision during the next
  /// Drain(), even when batch_size is 1, exactly as if batch_size had
  /// been raised to the batch length for this batch only. Result sets
  /// are routing-invariant (§2.2), so batch and single injection yield
  /// identical answers; only decision count and routing order differ.
  void InjectBatch(size_t source, const std::vector<Tuple>& batch);

  /// Injects a pre-built routed tuple (shared mode sets `queries` first).
  void InjectRouted(RoutedTuple rt);

  /// Batch counterpart of InjectRouted: enqueues all tuples and applies
  /// the same one-decision-per-batch amortization as InjectBatch.
  void InjectRoutedBatch(std::vector<RoutedTuple>&& batch);

  /// Routes until the internal queue is empty.
  void Drain();

  /// Swaps the routing policy mid-flight (operator statistics persist).
  void SetPolicy(std::unique_ptr<RoutingPolicy> policy) {
    policy_ = std::move(policy);
  }

  /// Turns the §4.3 knobs while running (used by the KnobController).
  void set_batch_size(size_t batch) {
    options_.batch_size = batch < 1 ? 1 : batch;
    decision_cache_.clear();
  }
  void set_fixed_sequence_length(size_t len) {
    options_.fixed_sequence_length = len < 1 ? 1 : len;
  }
  size_t batch_size() const { return options_.batch_size; }
  size_t fixed_sequence_length() const {
    return options_.fixed_sequence_length;
  }

  const std::vector<EddyOpStats>& op_stats() const { return stats_; }
  uint64_t decisions() const { return decisions_; }
  uint64_t visits() const { return visits_; }
  uint64_t emitted() const { return emitted_; }
  /// Decision-cache outcomes while a reuse span (batch_size knob or an
  /// injected batch) was active: hits reused a cached choice, misses paid
  /// a policy consultation. hits / (hits + misses) is the amortization
  /// the §4.3 batching knob actually achieved.
  uint64_t decision_cache_hits() const { return cache_hits_; }
  uint64_t decision_cache_misses() const { return cache_misses_; }
  /// Times the reusable eligibility/ranking scratch buffers had to grow
  /// (heap-allocate). visits() / scratch_allocs() is the amortization
  /// factor of the per-hop buffer reuse: it climbs without bound on a
  /// steady operator set, where the old code allocated once per hop.
  uint64_t scratch_allocs() const { return scratch_allocs_; }
  const SourceLayout& layout() const { return *layout_; }

  /// Raises the arrival-order counter to at least `floor`. State migration
  /// installs foreign SteM entries carrying their donor eddy's sequence
  /// numbers; the recipient must assign strictly larger seqs to future
  /// arrivals or the probe-side `stored.seq() >= probe.seq()` dedup would
  /// silently drop matches against the installed entries. Call on the
  /// thread that owns this eddy (same discipline as Inject).
  void EnsureSeqAtLeast(int64_t floor) {
    if (next_seq_ <= floor) next_seq_ = floor + 1;
  }

  /// The seq the next arrival will receive. Checkpointing captures it so a
  /// replica restored from the checkpoint stamps replayed arrivals with
  /// seqs the dedup treats exactly like the primary would have (read on
  /// the owning thread, same discipline as EnsureSeqAtLeast).
  int64_t next_seq() const { return next_seq_; }

 private:
  /// Collects indexes of operators eligible for `rt` and not yet done.
  /// Tracks scratch growth when `out` is one of the member buffers.
  void EligibleOps(const RoutedTuple& rt, std::vector<size_t>* out);

  /// Routes one tuple one hop; re-enqueues it and its outputs as needed.
  void RouteOne(RoutedTuple rt);

  /// Emits or discards a tuple that no operator wants anymore.
  void Complete(RoutedTuple&& rt);

  /// Decision-time ranking used to fix operator sequences: ops sorted by
  /// tickets/cost descending, written into the reusable `*out` scratch.
  void SnapshotRanking(std::vector<size_t>* out) const;

  const SourceLayout* layout_;
  std::unique_ptr<RoutingPolicy> policy_;
  Options options_;

  std::vector<EddyOperatorPtr> ops_;
  std::vector<int> groups_;
  std::vector<bool> is_probe_;
  std::vector<EddyOpStats> stats_;
  std::vector<double> cost_hints_;
  int64_t next_seq_ = 1;

  /// Routing queue chunks come from the thread-local BlockPool: the queue
  /// oscillates around empty once per Drain, so deque chunk churn would
  /// otherwise hit the allocator every injection burst.
  std::deque<RoutedTuple, PoolAllocator<RoutedTuple>> queue_;
  std::function<void(RoutedTuple&&)> sink_;
  std::function<void(RoutedTuple&&)> partial_sink_;

  // Batch decision cache: source-set key -> (chosen op, uses remaining).
  struct CachedDecision {
    size_t op = 0;
    size_t remaining = 0;
  };
  std::unordered_map<uint64_t, CachedDecision> decision_cache_;
  /// When > 1, an injected batch of this many tuples is in flight: new
  /// cached decisions get at least batch_hint_ - 1 reuses, so the whole
  /// batch routes through one decision per stage. Reset when Drain()
  /// empties the queue, with cache entries clamped back to the
  /// options_.batch_size budget (cleared when that knob is 1), so batch
  /// amortization never leaks into subsequent single-tuple injections
  /// while the configured knob keeps its remaining reuses.
  size_t batch_hint_ = 0;

  /// Reusable per-hop scratch (safe: routing is single-threaded and
  /// non-reentrant). Avoids one-to-three vector allocations per hop.
  std::vector<size_t> eligible_scratch_;
  std::vector<size_t> ranking_scratch_;

  // Relaxed atomics (telemetry Counter), not plain uint64_t: under sharded
  // execution each eddy runs on its shard's thread while snapshot paths
  // (Server::SnapshotMetrics, ShardedEngine::shard_stats) read the
  // accessors from other threads. Routing itself stays single-threaded,
  // so the write side is uncontended. flushed_* below stay plain — they
  // are only touched inside Drain() on the owning thread.
  Counter decisions_;
  Counter visits_;
  Counter emitted_;
  Counter scratch_allocs_;
  Counter cache_hits_;
  Counter cache_misses_;

#ifndef TCQ_METRICS_DISABLED
  /// Records one hop of a traced tuple (rt.trace_id != 0).
  void TraceHop(const RoutedTuple& rt, size_t op, int decision_src,
                bool passed) const;
  /// Pushes counter deltas since the last flush onto the global registry.
  /// Called once per Drain() — batch-amortized, off the per-hop path.
  void FlushMetrics();
  uint64_t flushed_decisions_ = 0;
  uint64_t flushed_visits_ = 0;
  uint64_t flushed_emitted_ = 0;
  uint64_t flushed_cache_hits_ = 0;
  uint64_t flushed_cache_misses_ = 0;
#endif
};

}  // namespace tcq

#endif  // TCQ_EDDY_EDDY_H_
