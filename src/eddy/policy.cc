#include "eddy/policy.h"

#include <algorithm>

#include "common/logging.h"

namespace tcq {

void RoutingPolicy::Observe(size_t op, bool passed,
                            std::vector<EddyOpStats>* stats) {
  // Default ticket bookkeeping (used even by policies that ignore it, so
  // that switching policies mid-run starts from live statistics).
  EddyOpStats& s = (*stats)[op];
  s.tickets += 1.0;
  if (passed) s.tickets -= 1.0;
  if (s.tickets < 0.0) s.tickets = 0.0;
}

size_t FixedPolicy::Choose(const std::vector<size_t>& eligible,
                           const std::vector<EddyOpStats>& stats,
                           const std::vector<double>& cost_hints) {
  (void)stats;
  (void)cost_hints;
  TCQ_DCHECK(!eligible.empty());
  size_t best = eligible[0];
  size_t best_rank = SIZE_MAX;
  for (size_t op : eligible) {
    const size_t rank = op < priority_.size() ? priority_[op] : op;
    if (rank < best_rank) {
      best_rank = rank;
      best = op;
    }
  }
  return best;
}

size_t RandomPolicy::Choose(const std::vector<size_t>& eligible,
                            const std::vector<EddyOpStats>& stats,
                            const std::vector<double>& cost_hints) {
  (void)stats;
  (void)cost_hints;
  TCQ_DCHECK(!eligible.empty());
  return eligible[rng_.NextBounded(eligible.size())];
}

size_t LotteryPolicy::Choose(const std::vector<size_t>& eligible,
                             const std::vector<EddyOpStats>& stats,
                             const std::vector<double>& cost_hints) {
  TCQ_DCHECK(!eligible.empty());
  ++decisions_;
  // Weight = (tickets + exploration floor) / cost. Selective (ticket-rich)
  // and cheap operators win more lotteries.
  double total = 0.0;
  std::vector<double>& weights = weights_scratch_;
  weights.assign(eligible.size(), 0.0);
  for (size_t i = 0; i < eligible.size(); ++i) {
    const size_t op = eligible[i];
    const double cost = std::max(cost_hints[op], 1e-9);
    weights[i] = (stats[op].tickets + options_.exploration) / cost;
    total += weights[i];
  }
  double draw = rng_.NextDouble() * total;
  for (size_t i = 0; i < eligible.size(); ++i) {
    draw -= weights[i];
    if (draw <= 0.0) return eligible[i];
  }
  return eligible.back();
}

void LotteryPolicy::Observe(size_t op, bool passed,
                            std::vector<EddyOpStats>* stats) {
  EddyOpStats& s = (*stats)[op];
  s.tickets += 1.0;
  if (passed) s.tickets -= 1.0;
  if (s.tickets < 0.0) s.tickets = 0.0;
  if (s.tickets > options_.max_tickets) s.tickets = options_.max_tickets;
  if (options_.decay_interval > 0 && decisions_ > 0 &&
      decisions_ % options_.decay_interval == 0) {
    for (EddyOpStats& t : *stats) t.tickets *= options_.decay;
  }
}

std::unique_ptr<RoutingPolicy> MakePolicy(const std::string& name,
                                          uint64_t seed) {
  if (name == "random") return std::make_unique<RandomPolicy>(seed);
  if (name == "lottery") return std::make_unique<LotteryPolicy>(seed);
  if (name == "fixed") {
    return std::make_unique<FixedPolicy>(std::vector<size_t>{});
  }
  TCQ_LOG(Warn) << "unknown policy '" << name << "', using lottery";
  return std::make_unique<LotteryPolicy>(seed);
}

}  // namespace tcq
