#include "eddy/eddy.h"

#include <algorithm>

#include "common/logging.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace tcq {

namespace {

#ifndef TCQ_METRICS_DISABLED
/// Process-wide routing telemetry, aggregated across eddies. Per-eddy and
/// per-operator detail stays on the Eddy (op_stats() and the accessors
/// above) and is composed into snapshots by whoever owns the eddy.
struct RoutingMetrics {
  Counter* injected;
  Counter* decisions;
  Counter* visits;
  Counter* emitted;
  Counter* cache_hits;
  Counter* cache_misses;

  static RoutingMetrics& Get() {
    static RoutingMetrics m = [] {
      MetricRegistry& r = MetricRegistry::Global();
      return RoutingMetrics{r.GetCounter("tcq.eddy.injected"),
                            r.GetCounter("tcq.eddy.decisions"),
                            r.GetCounter("tcq.eddy.visits"),
                            r.GetCounter("tcq.eddy.emitted"),
                            r.GetCounter("tcq.eddy.cache_hits"),
                            r.GetCounter("tcq.eddy.cache_misses")};
    }();
    return m;
  }
};

/// Decision-source markers used between the decision point and TraceHop.
constexpr int kDecisionPolicy = 0;
constexpr int kDecisionCached = 1;
constexpr int kDecisionSequence = 2;
#endif
/// Folds a bitset into one word (collision-free below 64 bits, which
/// covers realistic source counts and all but enormous operator sets).
uint64_t FoldBits(const SmallBitset& bits) {
  uint64_t key = 0;
  bits.ForEachSet([&](size_t i) { key |= uint64_t{1} << (i % 64); });
  return key;
}

/// Batch-cache key for a tuple's routing *stage*: both its source
/// composition and which operators it has already visited. Tuples at the
/// same stage may legitimately share one routing decision.
uint64_t StageKey(const RoutedTuple& rt) {
  return FoldBits(rt.sources) * 0x9E3779B97F4A7C15ULL ^ FoldBits(rt.done);
}
}  // namespace

Eddy::Eddy(const SourceLayout* layout, std::unique_ptr<RoutingPolicy> policy)
    : Eddy(layout, std::move(policy), Options()) {}

Eddy::Eddy(const SourceLayout* layout, std::unique_ptr<RoutingPolicy> policy,
           Options options)
    : layout_(layout), policy_(std::move(policy)), options_(options) {
  TCQ_CHECK(layout_ != nullptr);
  TCQ_CHECK(policy_ != nullptr);
  TCQ_CHECK(options_.batch_size >= 1);
  TCQ_CHECK(options_.fixed_sequence_length >= 1);
}

size_t Eddy::AddOperator(EddyOperatorPtr op, int group) {
  TCQ_CHECK(op != nullptr);
  ops_.push_back(std::move(op));
  groups_.push_back(group);
  is_probe_.push_back(ops_.back()->IsJoinProbe());
  stats_.emplace_back();
  cost_hints_.push_back(ops_.back()->CostHint());
  decision_cache_.clear();  // Cached choices may now be stale.
  return ops_.size() - 1;
}

void Eddy::Inject(size_t source, const Tuple& narrow) {
  SmallBitset sources(layout_->num_sources());
  sources.Set(source);
  RoutedTuple rt(layout_->Widen(source, narrow), std::move(sources),
                 ops_.size());
  rt.tuple.set_seq(next_seq_++);  // Arrival order, for join dedup.
  TCQ_METRIC(rt.trace_id = Tracer::Global().MaybeStartTrace());
  queue_.push_back(std::move(rt));
}

void Eddy::InjectBatch(size_t source, const std::vector<Tuple>& batch) {
  SmallBitset sources(layout_->num_sources());
  sources.Set(source);
  for (const Tuple& narrow : batch) {
    RoutedTuple rt(layout_->Widen(source, narrow), sources, ops_.size());
    rt.tuple.set_seq(next_seq_++);
    TCQ_METRIC(rt.trace_id = Tracer::Global().MaybeStartTrace());
    queue_.push_back(std::move(rt));
  }
  if (batch.size() > batch_hint_) batch_hint_ = batch.size();
}

void Eddy::InjectRouted(RoutedTuple rt) {
  if (rt.done.size_bits() < ops_.size()) rt.done.Resize(ops_.size());
  if (rt.tuple.seq() == 0) rt.tuple.set_seq(next_seq_++);
  if (rt.trace_id == 0) {
    TCQ_METRIC(rt.trace_id = Tracer::Global().MaybeStartTrace());
  }
  queue_.push_back(std::move(rt));
}

void Eddy::InjectRoutedBatch(std::vector<RoutedTuple>&& batch) {
  const size_t n = batch.size();
  for (RoutedTuple& rt : batch) InjectRouted(std::move(rt));
  batch.clear();
  if (n > batch_hint_) batch_hint_ = n;
}

void Eddy::EligibleOps(const RoutedTuple& rt, std::vector<size_t>* out) {
  const size_t cap_before = out->capacity();
  out->clear();
  for (size_t i = 0; i < ops_.size(); ++i) {
    if (!rt.done.Test(i) && ops_[i]->Eligible(rt.sources)) {
      out->push_back(i);
    }
  }
  if (out->capacity() != cap_before) ++scratch_allocs_;
}

void Eddy::SnapshotRanking(std::vector<size_t>* out) const {
  out->resize(ops_.size());
  for (size_t i = 0; i < ops_.size(); ++i) (*out)[i] = i;
  std::stable_sort(out->begin(), out->end(), [&](size_t a, size_t b) {
    const double wa = stats_[a].tickets / std::max(cost_hints_[a], 1e-9);
    const double wb = stats_[b].tickets / std::max(cost_hints_[b], 1e-9);
    return wa > wb;
  });
}

void Eddy::Complete(RoutedTuple&& rt) {
#ifndef TCQ_METRICS_DISABLED
  if (rt.trace_id != 0) {
    const bool emits = partial_sink_ != nullptr ||
                       rt.sources.Count() == layout_->num_sources();
    TraceEvent ev;
    ev.trace_id = rt.trace_id;
    ev.tuple_seq = rt.tuple.seq();
    ev.op = emits ? "[emit]" : "[discard]";
    ev.decision = TraceDecision::kNone;
    ev.passed = emits;
    ev.queue_depth = queue_.size();
    Tracer::Global().Record(std::move(ev));
  }
#endif
  // Shared (CACQ) mode: the engine above decides per-query delivery from
  // the tuple's composition and lineage.
  if (partial_sink_) {
    ++emitted_;
    partial_sink_(std::move(rt));
    return;
  }
  // Single-query mode: a tuple reaches the query output only when it spans
  // every source of this Eddy; partial compositions have served their
  // purpose (their state lives on inside SteMs awaiting future matches).
  if (rt.sources.Count() == layout_->num_sources()) {
    ++emitted_;
    if (sink_) sink_(std::move(rt));
  }
}

#ifndef TCQ_METRICS_DISABLED
void Eddy::TraceHop(const RoutedTuple& rt, size_t op, int decision_src,
                    bool passed) const {
  TraceEvent ev;
  ev.trace_id = rt.trace_id;
  ev.tuple_seq = rt.tuple.seq();
  ev.op = ops_[op]->name();
  switch (decision_src) {
    case kDecisionCached:
      ev.decision = TraceDecision::kCached;
      break;
    case kDecisionSequence:
      ev.decision = TraceDecision::kSequence;
      break;
    default:
      ev.decision = TraceDecision::kPolicy;
      break;
  }
  ev.passed = passed;
  ev.queue_depth = queue_.size();
  Tracer::Global().Record(std::move(ev));
}

void Eddy::FlushMetrics() {
  RoutingMetrics& m = RoutingMetrics::Get();
  m.decisions->Add(decisions_ - flushed_decisions_);
  m.visits->Add(visits_ - flushed_visits_);
  m.emitted->Add(emitted_ - flushed_emitted_);
  m.cache_hits->Add(cache_hits_ - flushed_cache_hits_);
  m.cache_misses->Add(cache_misses_ - flushed_cache_misses_);
  flushed_decisions_ = decisions_;
  flushed_visits_ = visits_;
  flushed_emitted_ = emitted_;
  flushed_cache_hits_ = cache_hits_;
  flushed_cache_misses_ = cache_misses_;
}
#endif

void Eddy::RouteOne(RoutedTuple rt) {
  if (rt.done.size_bits() < ops_.size()) rt.done.Resize(ops_.size());

  std::vector<size_t>& eligible = eligible_scratch_;
  EligibleOps(rt, &eligible);
  if (eligible.empty()) {
    Complete(std::move(rt));
    return;
  }

  // --- One routing decision (possibly served from the batch cache). ---
  // The cache engages for the configured batch_size knob AND for an
  // in-flight injected batch (batch_hint_), which amortizes one decision
  // over the whole batch at each routing stage.
  const size_t reuse_span = std::max(options_.batch_size, batch_hint_);
  size_t chosen;
#ifndef TCQ_METRICS_DISABLED
  int decision_src = kDecisionPolicy;
#endif
  if (reuse_span > 1) {
    const uint64_t key = StageKey(rt);
    auto it = decision_cache_.find(key);
    if (it != decision_cache_.end() && it->second.remaining > 0 &&
        std::find(eligible.begin(), eligible.end(), it->second.op) !=
            eligible.end()) {
      chosen = it->second.op;
      --it->second.remaining;
      ++cache_hits_;
      TCQ_METRIC(decision_src = kDecisionCached);
    } else {
      chosen = policy_->Choose(eligible, stats_, cost_hints_);
      ++decisions_;
      ++cache_misses_;
      decision_cache_[key] = {chosen, reuse_span - 1};
    }
  } else {
    chosen = policy_->Choose(eligible, stats_, cost_hints_);
    ++decisions_;
  }

  // --- Apply the chosen operator, then (optionally) a fixed sequence. ---
  std::vector<size_t>& ranking = ranking_scratch_;
  bool ranking_built = false;
  size_t applied = 0;
  size_t next_op = chosen;
  while (true) {
    ++visits_;
    EddyOpStats& s = stats_[next_op];
    ++s.routed;
    EddyOpResult result = ops_[next_op]->Process(rt);
    rt.done.Set(next_op);
    // Alternative access methods into the same target: visiting one
    // satisfies all, so results are never duplicated across alternatives.
    if (groups_[next_op] >= 0) {
      for (size_t i = 0; i < ops_.size(); ++i) {
        if (groups_[i] == groups_[next_op]) rt.done.Set(i);
      }
    }
    // One-probe rule: after any join probe the tuple is spent for joining;
    // its outputs (probe bits cleared below) carry the remaining work.
    if (is_probe_[next_op]) {
      for (size_t i = 0; i < ops_.size(); ++i) {
        if (is_probe_[i]) rt.done.Set(i);
      }
    }
    if (result.pass) ++s.passed;
    s.produced += result.outputs.size();
    policy_->Observe(next_op, result.pass, &stats_);
#ifndef TCQ_METRICS_DISABLED
    if (rt.trace_id != 0) TraceHop(rt, next_op, decision_src, result.pass);
    decision_src = kDecisionSequence;  // Further hops skip consultation.
#endif

    for (RoutedTuple& out : result.outputs) {
      out.trace_id = rt.trace_id;  // Matches stay on their probe's trace.
      if (out.done.size_bits() < ops_.size()) out.done.Resize(ops_.size());
      // Join outputs probe the targets they still miss: clear inherited
      // probe marks (eligibility keeps them away from present targets).
      for (size_t i = 0; i < ops_.size(); ++i) {
        if (is_probe_[i]) out.done.Clear(i);
      }
      queue_.push_back(std::move(out));
    }

    if (!result.pass) {  // Input consumed (dropped or absorbed).
#ifndef TCQ_METRICS_DISABLED
      // A traced tuple's path ends explicitly: a drop with no outputs is a
      // dead end; an absorbing probe's trace continues on its outputs.
      if (rt.trace_id != 0 && result.outputs.empty()) {
        TraceEvent ev;
        ev.trace_id = rt.trace_id;
        ev.tuple_seq = rt.tuple.seq();
        ev.op = "[discard]";
        ev.decision = TraceDecision::kNone;
        ev.passed = false;
        ev.queue_depth = queue_.size();
        Tracer::Global().Record(std::move(ev));
      }
#endif
      return;
    }

    EligibleOps(rt, &eligible);
    if (eligible.empty()) {
      Complete(std::move(rt));
      return;
    }
    ++applied;
    if (applied >= options_.fixed_sequence_length) break;

    // Continue the fixed sequence: highest-ranked eligible operator under
    // the decision-time snapshot, without consulting the policy again.
    if (!ranking_built) {
      const size_t cap_before = ranking.capacity();
      SnapshotRanking(&ranking);
      if (ranking.capacity() != cap_before) ++scratch_allocs_;
      ranking_built = true;
    }
    bool found = false;
    for (size_t candidate : ranking) {
      if (std::find(eligible.begin(), eligible.end(), candidate) !=
          eligible.end()) {
        next_op = candidate;
        found = true;
        break;
      }
    }
    if (!found) break;
  }

  // Sequence budget exhausted with the tuple still alive: requeue at the
  // front (depth-first keeps in-flight state bounded) for a new decision.
  queue_.push_front(std::move(rt));
}

void Eddy::Drain() {
#ifndef TCQ_METRICS_DISABLED
  RoutingMetrics::Get().injected->Add(queue_.size());
#endif
  while (!queue_.empty()) {
    RoutedTuple rt = std::move(queue_.front());
    queue_.pop_front();
    RouteOne(std::move(rt));
  }
  TCQ_METRIC(FlushMetrics());
  // The injected batch (if any) has fully routed: retire its amortization.
  // Entries widened to the batch length are clamped back to the configured
  // batch_size budget rather than discarded, so the §4.3 knob keeps its
  // remaining reuses across Drain calls exactly as if no batch had been
  // injected; with batch_size == 1 no reuse is configured and the cache
  // only held batch-widened entries, so it empties entirely.
  if (batch_hint_ > 0) {
    batch_hint_ = 0;
    if (options_.batch_size > 1) {
      const size_t cap = options_.batch_size - 1;
      for (auto& entry : decision_cache_) {
        if (entry.second.remaining > cap) entry.second.remaining = cap;
      }
    } else {
      decision_cache_.clear();
    }
  }
}

}  // namespace tcq
