#ifndef TCQ_EDDY_ROUTED_TUPLE_H_
#define TCQ_EDDY_ROUTED_TUPLE_H_

#include <string>
#include <vector>

#include "common/bitset.h"
#include "common/logging.h"
#include "tuple/schema.h"
#include "tuple/tuple.h"

namespace tcq {

/// Canonical cell layout for tuples routed through one Eddy. A query's
/// sources are numbered 0..N-1; every routed tuple is *full width* — the
/// concatenation of all source schemas in source order — with NULL cells
/// for absent sources. This keeps column indexes stable no matter which
/// join order the Eddy explores: every predicate binds once against the
/// full schema, and joins are cell-wise merges of sparse tuples.
class SourceLayout {
 public:
  SourceLayout() = default;

  /// Adds a source; returns its index. `alias` is the query-level name
  /// ("c1" for `ClosingStockPrices as c1`).
  size_t AddSource(std::string alias, SchemaPtr schema);

  size_t num_sources() const { return aliases_.size(); }
  const std::string& alias(size_t s) const { return aliases_[s]; }
  const SchemaPtr& source_schema(size_t s) const { return schemas_[s]; }
  /// Offset of source s's first cell within the full-width tuple.
  size_t offset(size_t s) const { return offsets_[s]; }
  size_t arity(size_t s) const { return schemas_[s]->num_fields(); }
  size_t total_arity() const { return total_arity_; }

  /// The full-width schema (fields qualified by source alias), built once
  /// after all sources are added.
  const SchemaPtr& full_schema() const;

  /// Index of the source with the given alias, or num_sources() if absent.
  size_t SourceIndexOf(const std::string& alias) const;

  /// Widens a narrow source tuple into full-width canonical form.
  Tuple Widen(size_t source, const Tuple& narrow) const;

  /// Cell-wise union of two sparse full-width tuples: each cell takes the
  /// non-NULL side. The source sets must be disjoint (checked by caller).
  /// Result timestamp = max of the two.
  Tuple MergeSparse(const Tuple& a, const Tuple& b) const;

  /// Extracts source s's cells back out of a full-width tuple.
  Tuple Narrow(size_t source, const Tuple& wide) const;

 private:
  std::vector<std::string> aliases_;
  std::vector<SchemaPtr> schemas_;
  std::vector<size_t> offsets_;
  size_t total_arity_ = 0;
  mutable SchemaPtr full_schema_;  // Lazily built cache.
};

/// A tuple in flight inside an Eddy, carrying the routing state the paper
/// calls the "enhanced surrogate object" (§4.2.2): which sources compose
/// it, which operators have handled it, and — in shared (CACQ) mode —
/// which queries it still satisfies.
struct RoutedTuple {
  Tuple tuple;          ///< Full-width sparse tuple.
  SmallBitset sources;  ///< Source composition (bit per source).
  SmallBitset done;     ///< Operators that have completed on this tuple.
  /// CACQ completion lineage: bit q set = tuple still satisfies query q.
  /// Empty (size 0) in single-query mode.
  SmallBitset queries;
  /// Sampled-trace identity (telemetry/trace.h): 0 = untraced (the
  /// overwhelmingly common case); nonzero tuples record each routing hop.
  /// Join outputs inherit the id, so a traced probe's matches stay on
  /// the trace.
  uint64_t trace_id = 0;

  RoutedTuple() = default;
  RoutedTuple(Tuple t, SmallBitset src, size_t num_ops)
      : tuple(std::move(t)), sources(std::move(src)), done(num_ops) {}
};

}  // namespace tcq

#endif  // TCQ_EDDY_ROUTED_TUPLE_H_
