#include "eddy/routed_tuple.h"

namespace tcq {

size_t SourceLayout::AddSource(std::string alias, SchemaPtr schema) {
  TCQ_CHECK(schema != nullptr);
  TCQ_CHECK(full_schema_ == nullptr)
      << "cannot add sources after full_schema() was built";
  const size_t index = aliases_.size();
  offsets_.push_back(total_arity_);
  total_arity_ += schema->num_fields();
  aliases_.push_back(std::move(alias));
  schemas_.push_back(std::move(schema));
  return index;
}

const SchemaPtr& SourceLayout::full_schema() const {
  if (full_schema_ == nullptr) {
    std::vector<Field> fields;
    fields.reserve(total_arity_);
    for (size_t s = 0; s < schemas_.size(); ++s) {
      for (const Field& f : schemas_[s]->fields()) {
        Field qualified = f;
        qualified.qualifier = aliases_[s];
        fields.push_back(std::move(qualified));
      }
    }
    full_schema_ = Schema::Make(std::move(fields));
  }
  return full_schema_;
}

size_t SourceLayout::SourceIndexOf(const std::string& alias) const {
  for (size_t s = 0; s < aliases_.size(); ++s) {
    if (aliases_[s] == alias) return s;
  }
  return aliases_.size();
}

Tuple SourceLayout::Widen(size_t source, const Tuple& narrow) const {
  TCQ_DCHECK(source < num_sources());
  TCQ_DCHECK(narrow.arity() == arity(source))
      << "source " << aliases_[source] << " arity mismatch";
  const size_t base = offsets_[source];
  Tuple wide =
      Tuple::Build(total_arity_, narrow.timestamp(), [&](Value* cells) {
        // Cells outside the source stay NULL (value-initialized).
        for (size_t i = 0; i < narrow.arity(); ++i) {
          cells[base + i] = narrow.cell(i);
        }
      });
  wide.set_seq(narrow.seq());
  wide.set_retraction(narrow.retraction());
  return wide;
}

Tuple SourceLayout::MergeSparse(const Tuple& a, const Tuple& b) const {
  TCQ_DCHECK(a.arity() == total_arity_ && b.arity() == total_arity_);
  const Timestamp ts =
      a.timestamp() > b.timestamp() ? a.timestamp() : b.timestamp();
  Tuple merged = Tuple::Build(total_arity_, ts, [&](Value* cells) {
    for (size_t i = 0; i < total_arity_; ++i) {
      cells[i] = a.cell(i).is_null() ? b.cell(i) : a.cell(i);
    }
  });
  merged.set_seq(a.seq() > b.seq() ? a.seq() : b.seq());
  // Sign XOR: a join result with one retraction constituent retracts the
  // corresponding assertion-side result (DESIGN.md §15).
  merged.set_retraction(a.retraction() != b.retraction());
  return merged;
}

Tuple SourceLayout::Narrow(size_t source, const Tuple& wide) const {
  TCQ_DCHECK(source < num_sources());
  TCQ_DCHECK(wide.arity() == total_arity_);
  const size_t base = offsets_[source];
  const size_t n = arity(source);
  Tuple narrow = Tuple::Build(n, wide.timestamp(), [&](Value* cells) {
    for (size_t i = 0; i < n; ++i) cells[i] = wide.cell(base + i);
  });
  narrow.set_retraction(wide.retraction());
  return narrow;
}

}  // namespace tcq
