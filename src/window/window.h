#ifndef TCQ_WINDOW_WINDOW_H_
#define TCQ_WINDOW_WINDOW_H_

#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "expr/ast.h"

namespace tcq {

/// One `WindowIs(Stream, left(t), right(t))` clause from the paper's
/// for-loop construct (§4.1.1). The bound expressions may reference the
/// loop variable and `ST` (query start time); ends are inclusive.
struct WindowIsClause {
  std::string stream;  ///< Stream name or alias within the query.
  ExprPtr left_end;
  ExprPtr right_end;
};

/// The paper's low-level window mechanism:
///
///   for (t = init; continue_condition(t); t = change(t)) {
///     WindowIs(StreamA, left_end(t), right_end(t));
///     ...
///   }
///
/// `init`, `condition` and `step` are expressions over the loop variable
/// and ST. A missing init means t starts at 0 (the paper's snapshot
/// example `for (; t==0; t = -1)` relies on this).
struct ForLoopSpec {
  std::string var = "t";
  ExprPtr init;       ///< Initial value of var; nullptr = 0.
  ExprPtr condition;  ///< Loop continues while this is true; nullptr = once.
  ExprPtr step;       ///< Next value of var, e.g. `t + 5`; nullptr = t + 1.
  std::vector<WindowIsClause> windows;

  /// True when the loop never terminates on its own (a standing CQ whose
  /// condition is always true is legal; the client cancels it).
  bool has_condition() const { return condition != nullptr; }
};

/// Concrete bounds of one stream's window at one loop iteration.
struct WindowBounds {
  std::string stream;
  Timestamp left;   ///< Inclusive.
  Timestamp right;  ///< Inclusive.

  bool Contains(Timestamp ts) const { return ts >= left && ts <= right; }
  /// Number of timestamps covered; 0 for an empty (inverted) window.
  int64_t Width() const { return right >= left ? right - left + 1 : 0; }
  bool operator==(const WindowBounds& o) const {
    return stream == o.stream && left == o.left && right == o.right;
  }
};

/// Enumerates the window sequence a ForLoopSpec defines: each Next() call
/// produces the loop variable's value plus the bounds of every WindowIs
/// clause at that iteration, until the continue-condition fails.
class WindowSequence {
 public:
  struct Step {
    Timestamp t;
    std::vector<WindowBounds> bounds;  ///< One per WindowIs clause, in order.
  };

  /// `st` is the query start time, bound to variable "ST".
  WindowSequence(const ForLoopSpec* spec, Timestamp st);

  /// Advances the loop. Returns nullopt once the condition is false.
  std::optional<Step> Next();

  /// Loop variable value the *next* Next() will evaluate at.
  Timestamp current_t() const { return t_; }
  bool done() const { return done_; }

  /// OK while the sequence is well-formed. A bound, init or step that
  /// evaluates to NULL or a non-integer (or a non-boolean condition) ends
  /// the sequence — Next() returns nullopt instead of throwing — and the
  /// malformed expression is recorded here.
  const Status& status() const { return status_; }

 private:
  /// Evaluates `e` against env_ and stores the integer result in `*out`.
  /// On NULL or non-integer results, marks the sequence done, records a
  /// status naming `what`, and returns false.
  bool EvalTimestamp(const ExprPtr& e, const char* what, Timestamp* out);

  const ForLoopSpec* spec_;
  VarEnv env_;
  Timestamp t_ = 0;
  bool done_ = false;
  Status status_ = Status::OK();
};

/// Window shape taxonomy from §4.1/§4.1.2. Determined by probing the first
/// iterations of the sequence.
enum class WindowClass {
  kSnapshot,  ///< Exactly one iteration.
  kLandmark,  ///< Fixed left end, right end moves forward.
  kSliding,   ///< Both ends move forward; constant width.
  kHopping,   ///< Sliding whose hop exceeds 1 (may skip data if hop>width).
  kReverse,   ///< Ends move backward in time.
  kGeneral,   ///< Anything else (variable width, on-demand, ...).
};

const char* WindowClassToString(WindowClass c);

/// Probed properties of one WindowIs clause's window sequence.
struct WindowShape {
  WindowClass window_class = WindowClass::kGeneral;
  int64_t width = 0;  ///< Width at the first iteration.
  int64_t hop = 0;    ///< Right-end movement per iteration (0 = static).
  /// True when consecutive windows can skip stream portions (hop > width).
  bool skips_data = false;
  /// §4.1.2: an aggregate like MAX over this window needs the whole window
  /// retained (sliding), vs O(1) incremental state (landmark/snapshot).
  bool requires_full_window_state = false;
};

/// Classifies clause `clause_index` of `spec` by enumerating up to
/// `probe_steps` iterations starting at start time `st`.
Result<WindowShape> ClassifyWindow(const ForLoopSpec& spec,
                                   size_t clause_index, Timestamp st,
                                   size_t probe_steps = 8);

/// Validates that every bound expression only references the loop variable
/// and ST, and that the clause list is non-empty for stream queries.
Status ValidateForLoop(const ForLoopSpec& spec);

/// Convenience builders for the common window shapes (used by tests,
/// benches and the programmatic API; SQL queries go through the parser).
ForLoopSpec MakeSnapshotWindow(const std::string& stream, Timestamp left,
                               Timestamp right);
ForLoopSpec MakeLandmarkWindow(const std::string& stream, Timestamp left,
                               Timestamp start_t, Timestamp end_t);
ForLoopSpec MakeSlidingWindow(const std::string& stream, int64_t width,
                              int64_t hop, Timestamp start_t,
                              std::optional<Timestamp> end_t);

}  // namespace tcq

#endif  // TCQ_WINDOW_WINDOW_H_
