#include "window/window.h"

#include <algorithm>

#include "common/logging.h"

namespace tcq {

const char* WindowClassToString(WindowClass c) {
  switch (c) {
    case WindowClass::kSnapshot:
      return "snapshot";
    case WindowClass::kLandmark:
      return "landmark";
    case WindowClass::kSliding:
      return "sliding";
    case WindowClass::kHopping:
      return "hopping";
    case WindowClass::kReverse:
      return "reverse";
    case WindowClass::kGeneral:
      return "general";
  }
  return "?";
}

WindowSequence::WindowSequence(const ForLoopSpec* spec, Timestamp st)
    : spec_(spec) {
  if (spec_ == nullptr) {  // Degenerate: an already-finished sequence.
    done_ = true;
    return;
  }
  env_["ST"] = Value::Int64(st);
  if (spec_->init != nullptr) {
    env_[spec_->var] = Value::Int64(0);  // Init may not self-reference.
    EvalTimestamp(spec_->init, "for-loop init", &t_);
  } else {
    t_ = 0;
  }
}

bool WindowSequence::EvalTimestamp(const ExprPtr& e, const char* what,
                                   Timestamp* out) {
  const Value v = e->EvalConst(env_);
  if (v.type() != ValueType::kInt64) {
    // NULL-producing or non-integer bounds must not take down the engine
    // thread (int64_value() on the wrong alternative throws); the sequence
    // simply ends and the malformed expression is reported via status().
    done_ = true;
    status_ = Status::InvalidArgument(
        std::string(what) + " evaluated to " +
        (v.is_null() ? "NULL" : std::string("non-integer ") + v.ToString()) +
        ": " + e->ToString());
    return false;
  }
  *out = v.int64_value();
  return true;
}

std::optional<WindowSequence::Step> WindowSequence::Next() {
  if (done_) return std::nullopt;
  env_[spec_->var] = Value::Int64(t_);
  if (spec_->condition != nullptr) {
    const Value cond = spec_->condition->EvalConst(env_);
    if (cond.is_null()) {
      done_ = true;
      return std::nullopt;
    }
    if (cond.type() != ValueType::kBool) {
      done_ = true;
      status_ = Status::InvalidArgument(
          "for-loop condition evaluated to non-boolean " + cond.ToString() +
          ": " + spec_->condition->ToString());
      return std::nullopt;
    }
    if (!cond.bool_value()) {
      done_ = true;
      return std::nullopt;
    }
  }
  Step step;
  step.t = t_;
  step.bounds.reserve(spec_->windows.size());
  for (const WindowIsClause& clause : spec_->windows) {
    WindowBounds b;
    b.stream = clause.stream;
    if (!EvalTimestamp(clause.left_end, "window left end", &b.left) ||
        !EvalTimestamp(clause.right_end, "window right end", &b.right)) {
      return std::nullopt;
    }
    step.bounds.push_back(std::move(b));
  }
  // Advance the loop variable.
  if (spec_->condition == nullptr) {
    done_ = true;  // No condition: execute exactly once.
  } else if (spec_->step != nullptr) {
    // A malformed step still yields the current (well-formed) window; the
    // sequence just cannot advance past it.
    if (!EvalTimestamp(spec_->step, "for-loop step", &t_)) return step;
  } else {
    t_ = t_ + 1;
  }
  return step;
}

Status ValidateForLoop(const ForLoopSpec& spec) {
  auto check_expr = [&](const ExprPtr& e, const char* what) -> Status {
    if (e == nullptr) return Status::OK();
    std::vector<std::string> columns;
    e->CollectColumns(&columns);
    if (!columns.empty()) {
      return Status::InvalidArgument(
          std::string(what) + " must not reference stream columns: " +
          e->ToString());
    }
    std::vector<std::string> vars;
    e->CollectVariables(&vars);
    for (const auto& v : vars) {
      if (v != spec.var && v != "ST") {
        return Status::InvalidArgument(std::string(what) +
                                       " references unknown variable " + v);
      }
    }
    return Status::OK();
  };
  TCQ_RETURN_NOT_OK(check_expr(spec.init, "for-loop init"));
  TCQ_RETURN_NOT_OK(check_expr(spec.condition, "for-loop condition"));
  TCQ_RETURN_NOT_OK(check_expr(spec.step, "for-loop step"));
  for (const WindowIsClause& c : spec.windows) {
    if (c.stream.empty()) {
      return Status::InvalidArgument("WindowIs clause without a stream");
    }
    if (c.left_end == nullptr || c.right_end == nullptr) {
      return Status::InvalidArgument("WindowIs(" + c.stream +
                                     ") needs both window ends");
    }
    TCQ_RETURN_NOT_OK(check_expr(c.left_end, "window left end"));
    TCQ_RETURN_NOT_OK(check_expr(c.right_end, "window right end"));
  }
  return Status::OK();
}

Result<WindowShape> ClassifyWindow(const ForLoopSpec& spec,
                                   size_t clause_index, Timestamp st,
                                   size_t probe_steps) {
  if (clause_index >= spec.windows.size()) {
    return Status::OutOfRange("clause index out of range");
  }
  TCQ_RETURN_NOT_OK(ValidateForLoop(spec));

  WindowSequence seq(&spec, st);
  std::vector<WindowBounds> probes;
  for (size_t i = 0; i < probe_steps; ++i) {
    auto step = seq.Next();
    if (!step.has_value()) break;
    probes.push_back(step->bounds[clause_index]);
  }
  // A sequence that ended because a bound/init/step was NULL or mistyped is
  // a malformed query, not a kGeneral window — surface it to the caller.
  if (!seq.status().ok()) return seq.status();
  WindowShape shape;
  if (probes.empty()) {
    shape.window_class = WindowClass::kGeneral;
    return shape;
  }
  shape.width = probes[0].Width();
  if (probes.size() == 1 && seq.done()) {
    shape.window_class = WindowClass::kSnapshot;
    shape.hop = 0;
    shape.requires_full_window_state = false;
    return shape;
  }
  // Examine deltas between consecutive probes.
  bool left_fixed = true;
  bool constant_deltas = true;
  int64_t dl0 = probes.size() > 1 ? probes[1].left - probes[0].left : 0;
  int64_t dr0 = probes.size() > 1 ? probes[1].right - probes[0].right : 0;
  for (size_t i = 1; i < probes.size(); ++i) {
    const int64_t dl = probes[i].left - probes[i - 1].left;
    const int64_t dr = probes[i].right - probes[i - 1].right;
    if (dl != 0) left_fixed = false;
    if (dl != dl0 || dr != dr0) constant_deltas = false;
  }
  shape.hop = dr0;
  if (left_fixed && constant_deltas && dr0 > 0) {
    shape.window_class = WindowClass::kLandmark;
    shape.requires_full_window_state = false;  // Incremental MAX is O(1).
  } else if (constant_deltas && dl0 == dr0 && dr0 > 0) {
    shape.window_class = dr0 == 1 ? WindowClass::kSliding
                                  : WindowClass::kHopping;
    shape.skips_data = dr0 > shape.width;
    shape.requires_full_window_state = true;  // Eviction invalidates MAX.
  } else if (constant_deltas && dr0 < 0) {
    shape.window_class = WindowClass::kReverse;
    shape.requires_full_window_state = true;
  } else {
    shape.window_class = WindowClass::kGeneral;
    shape.requires_full_window_state = true;
  }
  return shape;
}

namespace {
ExprPtr TVar() { return Expr::Variable("t"); }
ExprPtr IntLit(Timestamp v) { return Expr::Literal(Value::Int64(v)); }
}  // namespace

ForLoopSpec MakeSnapshotWindow(const std::string& stream, Timestamp left,
                               Timestamp right) {
  ForLoopSpec spec;
  // The paper's snapshot idiom: for (; t==0; t = -1) { WindowIs(S, l, r); }
  spec.condition = Expr::Binary(BinaryOp::kEq, TVar(), IntLit(0));
  spec.step = IntLit(-1);
  spec.windows.push_back({stream, IntLit(left), IntLit(right)});
  return spec;
}

ForLoopSpec MakeLandmarkWindow(const std::string& stream, Timestamp left,
                               Timestamp start_t, Timestamp end_t) {
  ForLoopSpec spec;
  spec.init = IntLit(start_t);
  spec.condition = Expr::Binary(BinaryOp::kLe, TVar(), IntLit(end_t));
  spec.step = Expr::Binary(BinaryOp::kAdd, TVar(), IntLit(1));
  spec.windows.push_back({stream, IntLit(left), TVar()});
  return spec;
}

ForLoopSpec MakeSlidingWindow(const std::string& stream, int64_t width,
                              int64_t hop, Timestamp start_t,
                              std::optional<Timestamp> end_t) {
  TCQ_CHECK(width > 0 && hop > 0);
  ForLoopSpec spec;
  spec.init = IntLit(start_t);
  if (end_t.has_value()) {
    spec.condition = Expr::Binary(BinaryOp::kLt, TVar(), IntLit(*end_t));
  } else {
    spec.condition = Expr::Literal(Value::Bool(true));  // Standing CQ.
  }
  spec.step = Expr::Binary(BinaryOp::kAdd, TVar(), IntLit(hop));
  spec.windows.push_back(
      {stream, Expr::Binary(BinaryOp::kSub, TVar(), IntLit(width - 1)),
       TVar()});
  return spec;
}

}  // namespace tcq
