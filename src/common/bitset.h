#ifndef TCQ_COMMON_BITSET_H_
#define TCQ_COMMON_BITSET_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/logging.h"
#include "common/object_pool.h"

namespace tcq {

/// A dynamic bitset with small-size optimization: sets of up to 128 bits
/// (two words) live inline with no heap allocation. Tuple lineage in CACQ
/// attaches three of these to every in-flight tuple, so the common case
/// (≤128 concurrent queries / modules) must be allocation-free.
class SmallBitset {
 public:
  SmallBitset() = default;
  /// Constructs an all-zero set able to hold `nbits` bits.
  explicit SmallBitset(size_t nbits) { Resize(nbits); }

  SmallBitset(const SmallBitset&) = default;
  SmallBitset& operator=(const SmallBitset&) = default;
  SmallBitset(SmallBitset&&) = default;
  SmallBitset& operator=(SmallBitset&&) = default;

  size_t size_bits() const { return nbits_; }

  /// Grows (or shrinks) capacity; newly exposed bits are zero.
  void Resize(size_t nbits) {
    const size_t words = WordsFor(nbits);
    if (words > kInlineWords) {
      overflow_.resize(words - kInlineWords, 0);
    } else {
      overflow_.clear();
    }
    // Clear any bits beyond the new size in the last word.
    nbits_ = nbits;
    ClearTail();
  }

  void Set(size_t i) {
    TCQ_DCHECK(i < nbits_);
    WordAt(i / 64) |= (uint64_t{1} << (i % 64));
  }
  void Clear(size_t i) {
    TCQ_DCHECK(i < nbits_);
    WordAt(i / 64) &= ~(uint64_t{1} << (i % 64));
  }
  bool Test(size_t i) const {
    TCQ_DCHECK(i < nbits_);
    return (WordAt(i / 64) >> (i % 64)) & 1;
  }

  void SetAll() {
    for (size_t w = 0; w < WordsFor(nbits_); ++w) WordAt(w) = ~uint64_t{0};
    ClearTail();
  }
  void ClearAll() {
    for (size_t w = 0; w < WordsFor(nbits_); ++w) WordAt(w) = 0;
  }

  /// Number of set bits.
  size_t Count() const {
    size_t n = 0;
    for (size_t w = 0; w < WordsFor(nbits_); ++w)
      n += static_cast<size_t>(__builtin_popcountll(WordAt(w)));
    return n;
  }

  /// True iff no bit is set. Early-exits on the first non-zero word —
  /// this runs per tuple in lineage checks, where the common answer is
  /// "no" in word zero.
  bool None() const {
    for (size_t w = 0; w < WordsFor(nbits_); ++w) {
      if (WordAt(w) != 0) return false;
    }
    return true;
  }

  /// True iff every bit is set (and the set is non-empty). Early-exits
  /// on the first non-full word; the tail word is compared against its
  /// partial mask (tail bits above nbits_ are kept zero by ClearTail).
  bool All() const {
    if (nbits_ == 0) return false;
    const size_t words = WordsFor(nbits_);
    for (size_t w = 0; w + 1 < words; ++w) {
      if (WordAt(w) != ~uint64_t{0}) return false;
    }
    const uint64_t tail_mask = nbits_ % 64 == 0
                                   ? ~uint64_t{0}
                                   : (uint64_t{1} << (nbits_ % 64)) - 1;
    return WordAt(words - 1) == tail_mask;
  }

  /// True if every bit set in `other` is also set in *this.
  bool Contains(const SmallBitset& other) const {
    TCQ_DCHECK(nbits_ == other.nbits_);
    for (size_t w = 0; w < WordsFor(nbits_); ++w) {
      if ((other.WordAt(w) & ~WordAt(w)) != 0) return false;
    }
    return true;
  }

  /// True if *this and `other` share at least one set bit.
  bool Intersects(const SmallBitset& other) const {
    TCQ_DCHECK(nbits_ == other.nbits_);
    for (size_t w = 0; w < WordsFor(nbits_); ++w) {
      if ((other.WordAt(w) & WordAt(w)) != 0) return true;
    }
    return false;
  }

  SmallBitset& operator|=(const SmallBitset& other) {
    TCQ_DCHECK(nbits_ == other.nbits_);
    for (size_t w = 0; w < WordsFor(nbits_); ++w) WordAt(w) |= other.WordAt(w);
    return *this;
  }
  SmallBitset& operator&=(const SmallBitset& other) {
    TCQ_DCHECK(nbits_ == other.nbits_);
    for (size_t w = 0; w < WordsFor(nbits_); ++w) WordAt(w) &= other.WordAt(w);
    return *this;
  }
  /// Removes from *this every bit set in `other`.
  SmallBitset& operator-=(const SmallBitset& other) {
    TCQ_DCHECK(nbits_ == other.nbits_);
    for (size_t w = 0; w < WordsFor(nbits_); ++w) WordAt(w) &= ~other.WordAt(w);
    return *this;
  }

  /// Removes from *this every bit set in `other`, where `other` may be
  /// narrower than *this (bits of *this past other.size_bits() are
  /// untouched — they cannot be set in `other`). This is the hot-path
  /// form used by GroupedFilter::Apply when the candidate lineage bitmap
  /// is wider than the filter's query table: operator-= DCHECKs equal
  /// widths and would force a per-tuple Resize of a scratch copy.
  /// Sound because ClearTail keeps bits >= size_bits() zero in every
  /// word, so subtracting over other's words alone is exact.
  SmallBitset& SubtractPrefix(const SmallBitset& other) {
    TCQ_DCHECK(other.nbits_ <= nbits_);
    for (size_t w = 0; w < WordsFor(other.nbits_); ++w) {
      WordAt(w) &= ~other.WordAt(w);
    }
    return *this;
  }

  bool operator==(const SmallBitset& other) const {
    if (nbits_ != other.nbits_) return false;
    for (size_t w = 0; w < WordsFor(nbits_); ++w) {
      if (WordAt(w) != other.WordAt(w)) return false;
    }
    return true;
  }

  /// Index of the first set bit, or size_bits() if none.
  size_t FirstSet() const {
    for (size_t w = 0; w < WordsFor(nbits_); ++w) {
      uint64_t word = WordAt(w);
      if (word != 0) {
        return w * 64 + static_cast<size_t>(__builtin_ctzll(word));
      }
    }
    return nbits_;
  }

  /// Index of the first set bit at position >= from, or size_bits() if none.
  size_t NextSet(size_t from) const {
    if (from >= nbits_) return nbits_;
    size_t w = from / 64;
    uint64_t word = WordAt(w) & (~uint64_t{0} << (from % 64));
    while (true) {
      if (word != 0) {
        return w * 64 + static_cast<size_t>(__builtin_ctzll(word));
      }
      ++w;
      if (w >= WordsFor(nbits_)) return nbits_;
      word = WordAt(w);
    }
  }

  /// Calls fn(index) for every set bit in ascending order.
  template <typename Fn>
  void ForEachSet(Fn&& fn) const {
    for (size_t i = FirstSet(); i < nbits_; i = NextSet(i + 1)) fn(i);
  }

 private:
  static constexpr size_t kInlineWords = 2;

  static size_t WordsFor(size_t nbits) { return (nbits + 63) / 64; }

  uint64_t& WordAt(size_t w) {
    return w < kInlineWords ? inline_[w] : overflow_[w - kInlineWords];
  }
  const uint64_t& WordAt(size_t w) const {
    return w < kInlineWords ? inline_[w] : overflow_[w - kInlineWords];
  }

  /// Zeroes bits at positions >= nbits_ in the last word so that Count()
  /// and equality never see stale garbage after shrink/SetAll.
  void ClearTail() {
    if (nbits_ % 64 == 0) return;
    const size_t last = WordsFor(nbits_) - 1;
    WordAt(last) &= (uint64_t{1} << (nbits_ % 64)) - 1;
  }

  uint64_t inline_[kInlineWords] = {0, 0};
  /// Overflow words (>128 bits) come from the thread-local BlockPool:
  /// at >128 concurrent queries every in-flight RoutedTuple carries
  /// three spilled lineage bitsets, and copying/destroying them per
  /// tuple must not hit the system allocator (DESIGN.md §14).
  std::vector<uint64_t, PoolAllocator<uint64_t>> overflow_;
  size_t nbits_ = 0;
};

}  // namespace tcq

#endif  // TCQ_COMMON_BITSET_H_
