#ifndef TCQ_COMMON_RNG_H_
#define TCQ_COMMON_RNG_H_

#include <cstdint>
#include <limits>

namespace tcq {

/// Deterministic, seedable pseudo-random generator (xoshiro256**).
/// Every stochastic component in the engine (sources, lottery routing,
/// fault injection) takes one of these with an explicit seed so that tests
/// and experiments are reproducible run-to-run.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  /// Re-seeds the generator. Uses splitmix64 to expand the seed so that
  /// small consecutive seeds give uncorrelated streams.
  void Seed(uint64_t seed) {
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli draw with probability p of true.
  bool NextBool(double p) { return NextDouble() < p; }

  /// Zipf-distributed rank in [0, n) with skew parameter s (s=0 uniform).
  /// Uses rejection-inversion; adequate for workload generation.
  uint64_t NextZipf(uint64_t n, double s);

  /// UniformRandomBitGenerator interface for <random>/<algorithm> interop.
  uint64_t operator()() { return Next(); }
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() {
    return std::numeric_limits<uint64_t>::max();
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace tcq

#endif  // TCQ_COMMON_RNG_H_
