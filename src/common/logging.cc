#include "common/logging.h"

namespace tcq {

std::atomic<int> Logger::threshold_{static_cast<int>(LogLevel::kWarn)};

namespace {
const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

std::mutex& LogMutex() {
  static std::mutex mu;
  return mu;
}

Logger::Sink& TestSink() {
  static Logger::Sink sink;
  return sink;
}
}  // namespace

void Logger::Write(LogLevel level, const std::string& msg) {
  if (!Enabled(level) && level != LogLevel::kFatal) return;
  std::lock_guard<std::mutex> lock(LogMutex());
  if (TestSink()) {
    TestSink()(level, msg);
    return;
  }
  std::cerr << "[" << LevelName(level) << "] " << msg << "\n";
}

void Logger::SetSinkForTest(Sink sink) {
  std::lock_guard<std::mutex> lock(LogMutex());
  TestSink() = std::move(sink);
}

}  // namespace tcq
