#ifndef TCQ_COMMON_STATUS_H_
#define TCQ_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace tcq {

/// Error categories used across the engine. Modeled after the Arrow/RocksDB
/// convention: no exceptions cross public API boundaries; fallible operations
/// return Status (or Result<T> when they produce a value).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kParseError,
  kTypeError,
  kResourceExhausted,
  kFailedPrecondition,
  kUnavailable,
  kInternal,
  kNotImplemented,
  kCancelled,
};

/// Returns a stable human-readable name for a status code ("ParseError" etc.).
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error value. An OK status carries no allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Either a value of type T or an error Status. Access to value() on an
/// error result is a programming bug and asserts in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit from value: `return some_t;` in a Result-returning function.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status. Must not be OK (an OK Result needs a value).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "OK Status requires a value; use Result(T)");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the value, or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates an error status out of the current function.
#define TCQ_RETURN_NOT_OK(expr)                 \
  do {                                          \
    ::tcq::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                  \
  } while (0)

/// Evaluates a Result<T> expression and either binds its value or returns
/// the error. Usage: TCQ_ASSIGN_OR_RETURN(auto x, MakeX());
#define TCQ_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()
#define TCQ_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define TCQ_ASSIGN_OR_RETURN_NAME(a, b) TCQ_ASSIGN_OR_RETURN_CONCAT(a, b)
#define TCQ_ASSIGN_OR_RETURN(lhs, expr) \
  TCQ_ASSIGN_OR_RETURN_IMPL(            \
      TCQ_ASSIGN_OR_RETURN_NAME(_tcq_result_, __LINE__), lhs, expr)

}  // namespace tcq

#endif  // TCQ_COMMON_STATUS_H_
