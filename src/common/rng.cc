#include "common/rng.h"

#include <cmath>

namespace tcq {

uint64_t Rng::NextZipf(uint64_t n, double s) {
  if (n == 0) return 0;
  if (s <= 0.0) return NextBounded(n);
  // Inverse-CDF on the continuous approximation of the zipf distribution,
  // which is accurate enough for skewed workload generation and O(1).
  const double exponent = 1.0 - s;
  double u = NextDouble();
  double value;
  if (std::fabs(exponent) < 1e-9) {
    // s == 1: CDF ~ ln(x)/ln(n+1).
    value = std::pow(static_cast<double>(n) + 1.0, u);
  } else {
    const double hi = std::pow(static_cast<double>(n) + 1.0, exponent);
    value = std::pow(u * (hi - 1.0) + 1.0, 1.0 / exponent);
  }
  uint64_t rank = static_cast<uint64_t>(value);
  if (rank >= 1) rank -= 1;
  if (rank >= n) rank = n - 1;
  return rank;
}

}  // namespace tcq
