#ifndef TCQ_COMMON_CLOCK_H_
#define TCQ_COMMON_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace tcq {

/// Timestamps in TelegraphCQ come in two flavors (§4.1.2 of the paper):
/// logical (tuple sequence numbers — memory needs of a window are known a
/// priori) and physical (wall-clock — memory needs depend on arrival rate).
/// Both are carried as int64 values; WindowSpec records which flavor a
/// query's for-loop variable ranges over.
using Timestamp = int64_t;

constexpr Timestamp kMinTimestamp = INT64_MIN;
constexpr Timestamp kMaxTimestamp = INT64_MAX;

enum class TimeDomain {
  kLogical,   ///< Tuple sequence numbers, starting at 1 per the paper.
  kPhysical,  ///< Microseconds.
};

/// Monotonic source of logical timestamps for a stream.
class LogicalClock {
 public:
  explicit LogicalClock(Timestamp start = 1) : next_(start) {}

  /// Returns the next sequence number (consecutive, starting at `start`).
  Timestamp Tick() { return next_.fetch_add(1, std::memory_order_relaxed); }

  Timestamp Peek() const { return next_.load(std::memory_order_relaxed); }

 private:
  std::atomic<Timestamp> next_;
};

/// Wall-clock microseconds. Used only by benches and physical-time sources;
/// all tests run in the logical domain for determinism.
inline Timestamp PhysicalNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// A virtual clock that the simulation advances explicitly. Lets physical-
/// time windows be tested deterministically.
///
/// The clock is monotonic: like real time, it never runs backwards.
/// AdvanceTo with a timestamp at or behind Now() is a no-op (returns
/// false), so racing advancers cannot rewind observers — watermarks and
/// window bounds derived from the clock stay valid.
class VirtualClock {
 public:
  Timestamp Now() const { return now_.load(std::memory_order_acquire); }

  /// Advances to `t` if it is ahead of the current time. Returns whether
  /// the clock moved; a backwards (or equal) target is rejected.
  bool AdvanceTo(Timestamp t) {
    Timestamp cur = now_.load(std::memory_order_relaxed);
    while (t > cur) {
      if (now_.compare_exchange_weak(cur, t, std::memory_order_acq_rel,
                                     std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

  /// Advances by a non-negative delta. Negative deltas are clamped to 0
  /// (monotonicity again; callers wanting a rewind must build a new clock).
  void AdvanceBy(Timestamp delta) {
    if (delta <= 0) return;
    now_.fetch_add(delta, std::memory_order_acq_rel);
  }

 private:
  std::atomic<Timestamp> now_{0};
};

}  // namespace tcq

#endif  // TCQ_COMMON_CLOCK_H_
