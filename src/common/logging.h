#ifndef TCQ_COMMON_LOGGING_H_
#define TCQ_COMMON_LOGGING_H_

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace tcq {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kFatal = 4,
  kOff = 5,
};

/// Process-wide logging configuration. Default level is kWarn so tests and
/// benchmarks stay quiet; examples raise it to kInfo.
class Logger {
 public:
  static LogLevel threshold() {
    return static_cast<LogLevel>(threshold_.load(std::memory_order_relaxed));
  }
  static void set_threshold(LogLevel level) {
    threshold_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  static bool Enabled(LogLevel level) { return level >= threshold(); }

  /// Serializes a formatted line to stderr (or the test sink).
  static void Write(LogLevel level, const std::string& msg);

  /// Redirects Write() to `sink` instead of stderr (nullptr restores
  /// stderr). Used by tests asserting on emitted lines; the sink runs
  /// under the logger's serialization mutex, so keep it cheap.
  using Sink = std::function<void(LogLevel, const std::string&)>;
  static void SetSinkForTest(Sink sink);

 private:
  static std::atomic<int> threshold_;
};

namespace internal {

/// Accumulates one log line and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line) : level_(level) {
    stream_ << file << ":" << line << "] ";
  }
  ~LogMessage() {
    Logger::Write(level_, stream_.str());
    if (level_ == LogLevel::kFatal) std::abort();
  }
  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows a streamed expression when the level is disabled.
class LogMessageVoidify {
 public:
  void operator&(std::ostream&) {}
};

}  // namespace internal

#define TCQ_LOG_INTERNAL(level)                                    \
  ::tcq::internal::LogMessage(level, __FILE__, __LINE__).stream()
#define TCQ_LOG(severity)                                           \
  !::tcq::Logger::Enabled(::tcq::LogLevel::k##severity)              \
      ? (void)0                                                      \
      : ::tcq::internal::LogMessageVoidify() &                       \
            TCQ_LOG_INTERNAL(::tcq::LogLevel::k##severity)

/// Rate-limited logging for hot-path instrumentation: emits the 1st,
/// (n+1)th, (2n+1)th, ... *enabled* occurrence at this call site and
/// swallows the rest, so a per-tuple diagnostic cannot flood stderr.
/// Each expansion site owns its occurrence counter (the static lives in
/// the per-site lambda); counting is a relaxed atomic increment, and the
/// counter only advances while the severity is enabled — flipping the
/// threshold later starts the site fresh at its next occurrence.
/// Usable anywhere an expression statement is (unbraced if-arms included).
#define TCQ_LOG_EVERY_N(severity, n)                                      \
  !(::tcq::Logger::Enabled(::tcq::LogLevel::k##severity) &&               \
    []() {                                                                \
      static ::std::atomic<uint64_t> tcq_log_site_count{0};               \
      return tcq_log_site_count.fetch_add(                                \
                 1, ::std::memory_order_relaxed) %                        \
                 static_cast<uint64_t>(n) ==                              \
             0;                                                           \
    }())                                                                  \
      ? (void)0                                                           \
      : ::tcq::internal::LogMessageVoidify() &                            \
            TCQ_LOG_INTERNAL(::tcq::LogLevel::k##severity)

/// Invariant check that aborts (with message) in all build modes.
#define TCQ_CHECK(cond)                                       \
  (cond) ? (void)0                                            \
         : ::tcq::internal::LogMessageVoidify() &             \
               TCQ_LOG_INTERNAL(::tcq::LogLevel::kFatal)      \
                   << "Check failed: " #cond " "

#ifndef NDEBUG
#define TCQ_DCHECK(cond) TCQ_CHECK(cond)
#else
#define TCQ_DCHECK(cond) \
  while (false) TCQ_CHECK(cond)
#endif

}  // namespace tcq

#endif  // TCQ_COMMON_LOGGING_H_
