#ifndef TCQ_COMMON_OBJECT_POOL_H_
#define TCQ_COMMON_OBJECT_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace tcq {

/// Thread-local block recycler for the dataflow hot path (DESIGN.md §14).
///
/// The steady state of a many-query engine allocates the same few block
/// shapes over and over: Tuple cell arrays (one fused shared_ptr block
/// per Concat/Project/Widen), SmallBitset overflow words (three lineage
/// bitsets per in-flight RoutedTuple once queries exceed 128), and eddy
/// queue chunks. BlockPool intercepts those through size-class
/// freelists so the steady state never reaches the system allocator.
///
/// Ownership / thread rules:
///  * Each thread owns a private pool — Alloc never locks and never
///    touches another thread's freelists.
///  * Blocks may be freed on a different thread than they were
///    allocated on (tuples cross the sharded exchange); a freed block
///    joins the *freeing* thread's pool. The handoff that moved the
///    containing object across threads (queue mutex, exchange) is what
///    orders the old owner's writes before reuse.
///  * Retention is bounded: each size class keeps at most
///    kMaxFreePerClass blocks; further frees go straight back to the
///    system allocator (counted as `drops`). Requests above kMaxBytes
///    bypass the pool entirely (`oversize`).
///  * Thread exit drains the pool's retained blocks; frees that race
///    past the pool's destruction (objects dying in later thread_local
///    destructors) safely fall back to operator delete.
///
/// Statistics: per-thread counts, flushed to process-global relaxed
/// atomics every kFlushEvery events and at thread exit. Tests assert on
/// LocalStats() (exact for single-threaded sections); telemetry
/// publishes GlobalStats() via tcq.pool.* gauges (telemetry/
/// pool_metrics.h) — a snapshot may lag the per-thread tallies by at
/// most one flush window per thread.
class BlockPool {
 public:
  struct Stats {
    uint64_t hits = 0;      ///< Allocations served from a freelist.
    uint64_t misses = 0;    ///< Allocations that fell through to new.
    uint64_t returns = 0;   ///< Frees recycled into a freelist.
    uint64_t drops = 0;     ///< Frees past the retention bound.
    uint64_t oversize = 0;  ///< Requests above kMaxBytes (bypassed).
  };

  /// Pool granularity: sizes round up to multiples of kAlignQuantum
  /// bytes, so blocks are interchangeable within a class.
  static constexpr size_t kAlignQuantum = 64;
  static constexpr size_t kMaxBytes = 1 << 16;
  static constexpr size_t kNumClasses = kMaxBytes / kAlignQuantum;
  static constexpr size_t kMaxFreePerClass = 256;
  static constexpr uint64_t kFlushEvery = 1024;

  static void* Alloc(size_t bytes) {
    if (bytes == 0) bytes = 1;
    const size_t cls = ClassOf(bytes);
    if (tls_state_ == TlsState::kDead) return ::operator new(bytes);
    if (cls >= kNumClasses) {
      BlockPool& pool = Local();
      ++pool.stats_.oversize;
      pool.MaybeFlush();
      return ::operator new(bytes);
    }
    BlockPool& pool = Local();
    std::vector<void*>& list = pool.free_[cls];
    void* p;
    if (!list.empty()) {
      p = list.back();
      list.pop_back();
      ++pool.stats_.hits;
    } else {
      p = ::operator new((cls + 1) * kAlignQuantum);
      ++pool.stats_.misses;
    }
    pool.MaybeFlush();
    return p;
  }

  static void Free(void* p, size_t bytes) {
    if (p == nullptr) return;
    if (bytes == 0) bytes = 1;
    const size_t cls = ClassOf(bytes);
    if (cls >= kNumClasses || tls_state_ == TlsState::kDead) {
      ::operator delete(p);
      return;
    }
    BlockPool& pool = Local();
    std::vector<void*>& list = pool.free_[cls];
    if (list.size() >= kMaxFreePerClass) {
      ::operator delete(p);
      ++pool.stats_.drops;
    } else {
      list.push_back(p);
      ++pool.stats_.returns;
    }
    pool.MaybeFlush();
  }

  /// This thread's counters including the not-yet-flushed tail — exact
  /// for single-threaded test sections.
  static Stats LocalStats() {
    if (tls_state_ == TlsState::kDead) return Stats{};
    return Local().stats_;
  }

  /// Process-wide flushed totals (may lag per-thread tallies by up to
  /// one flush window per live thread).
  static Stats GlobalStats() {
    Stats s;
    s.hits = g_hits_.load(std::memory_order_relaxed);
    s.misses = g_misses_.load(std::memory_order_relaxed);
    s.returns = g_returns_.load(std::memory_order_relaxed);
    s.drops = g_drops_.load(std::memory_order_relaxed);
    s.oversize = g_oversize_.load(std::memory_order_relaxed);
    return s;
  }

  /// Releases every retained block on this thread and flushes stats
  /// (test hook; thread exit does the same via the destructor).
  static void DrainLocalForTest() {
    if (tls_state_ == TlsState::kDead) return;
    Local().Drain();
  }

  ~BlockPool() {
    Drain();
    tls_state_ = TlsState::kDead;
  }

  BlockPool(const BlockPool&) = delete;
  BlockPool& operator=(const BlockPool&) = delete;

 private:
  /// Thread-lifetime state of this thread's pool. Trivially destructible
  /// (unlike the pool), so it stays readable after the pool's own
  /// thread_local destructor has run — late frees from objects dying in
  /// later-destroyed thread_locals fall back to operator delete instead
  /// of resurrecting the pool.
  enum class TlsState : uint8_t { kUnborn = 0, kAlive, kDead };

  BlockPool() { tls_state_ = TlsState::kAlive; }

  static size_t ClassOf(size_t bytes) { return (bytes - 1) / kAlignQuantum; }

  static BlockPool& Local() {
    thread_local BlockPool pool;
    return pool;
  }

  void MaybeFlush() {
    if (++events_since_flush_ >= kFlushEvery) FlushStats();
  }

  void FlushStats() {
    events_since_flush_ = 0;
    g_hits_.fetch_add(stats_.hits - flushed_.hits,
                      std::memory_order_relaxed);
    g_misses_.fetch_add(stats_.misses - flushed_.misses,
                        std::memory_order_relaxed);
    g_returns_.fetch_add(stats_.returns - flushed_.returns,
                         std::memory_order_relaxed);
    g_drops_.fetch_add(stats_.drops - flushed_.drops,
                       std::memory_order_relaxed);
    g_oversize_.fetch_add(stats_.oversize - flushed_.oversize,
                          std::memory_order_relaxed);
    flushed_ = stats_;
  }

  void Drain() {
    for (std::vector<void*>& list : free_) {
      for (void* p : list) ::operator delete(p);
      list.clear();
    }
    FlushStats();
  }

  std::vector<void*> free_[kNumClasses];
  Stats stats_;
  Stats flushed_;
  uint64_t events_since_flush_ = 0;

  static thread_local TlsState tls_state_;

  static inline std::atomic<uint64_t> g_hits_{0};
  static inline std::atomic<uint64_t> g_misses_{0};
  static inline std::atomic<uint64_t> g_returns_{0};
  static inline std::atomic<uint64_t> g_drops_{0};
  static inline std::atomic<uint64_t> g_oversize_{0};
};

inline thread_local BlockPool::TlsState BlockPool::tls_state_ =
    BlockPool::TlsState::kUnborn;

/// Standard allocator over BlockPool, for containers whose churn sits on
/// the hot path (SmallBitset overflow words, the eddy's routing queue)
/// and for allocate_shared'ing Tuple cell blocks. Stateless: all
/// instances are interchangeable; deallocation may happen on any thread.
template <typename T>
struct PoolAllocator {
  using value_type = T;

  PoolAllocator() = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) {}  // NOLINT(runtime/explicit)

  T* allocate(size_t n) {
    return static_cast<T*>(BlockPool::Alloc(n * sizeof(T)));
  }
  void deallocate(T* p, size_t n) { BlockPool::Free(p, n * sizeof(T)); }

  template <typename U>
  bool operator==(const PoolAllocator<U>&) const {
    return true;
  }
  template <typename U>
  bool operator!=(const PoolAllocator<U>&) const {
    return false;
  }
};

}  // namespace tcq

#endif  // TCQ_COMMON_OBJECT_POOL_H_
