#include "ingress/sources.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.h"

namespace tcq {

// ----------------------------------------------------------- StockTicker

StockTickerSource::StockTickerSource() : StockTickerSource(Options()) {}

StockTickerSource::StockTickerSource(Options options)
    : options_(options),
      schema_(MakeSchema()),
      rng_(options.seed),
      prices_(options.num_symbols, options.start_price) {
  TCQ_CHECK(options_.num_symbols > 0);
}

SchemaPtr StockTickerSource::MakeSchema() {
  return Schema::Make({{"timestamp", ValueType::kInt64, ""},
                       {"stockSymbol", ValueType::kString, ""},
                       {"closingPrice", ValueType::kDouble, ""}});
}

std::string StockTickerSource::SymbolName(size_t i) {
  if (i == 0) return "MSFT";  // The paper's favourite.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "S%03zu", i);
  return buf;
}

std::optional<Tuple> StockTickerSource::Next() {
  if (options_.num_days >= 0 && day_ > options_.num_days) return std::nullopt;
  const size_t sym = next_symbol_;
  // Random walk, floored at 1.0 so prices stay positive.
  double& price = prices_[sym];
  price += (rng_.NextDouble() - 0.5) * 2.0 * options_.daily_volatility;
  if (price < 1.0) price = 1.0;

  Tuple t = Tuple::Make({Value::Int64(day_), Value::String(SymbolName(sym)),
                         Value::Double(price)},
                        day_);
  ++next_symbol_;
  if (next_symbol_ >= options_.num_symbols) {
    next_symbol_ = 0;
    ++day_;
  }
  return t;
}

// ------------------------------------------------------------- Packets

PacketSource::PacketSource() : PacketSource(Options()) {}

PacketSource::PacketSource(Options options)
    : options_(options), schema_(MakeSchema()), rng_(options.seed) {}

SchemaPtr PacketSource::MakeSchema() {
  return Schema::Make({{"timestamp", ValueType::kInt64, ""},
                       {"srcAddr", ValueType::kInt64, ""},
                       {"dstAddr", ValueType::kInt64, ""},
                       {"dstPort", ValueType::kInt64, ""},
                       {"bytes", ValueType::kInt64, ""}});
}

std::optional<Tuple> PacketSource::Next() {
  if (options_.num_packets >= 0 && seq_ > options_.num_packets) {
    return std::nullopt;
  }
  const int64_t src = static_cast<int64_t>(
      rng_.NextZipf(options_.num_hosts, options_.host_skew));
  const int64_t dst = static_cast<int64_t>(
      rng_.NextZipf(options_.num_hosts, options_.host_skew));
  const int64_t port =
      static_cast<int64_t>(rng_.NextZipf(options_.num_ports, 0.8));
  const int64_t bytes = rng_.NextInt(40, 1500);
  Tuple t = Tuple::Make({Value::Int64(seq_), Value::Int64(src),
                         Value::Int64(dst), Value::Int64(port),
                         Value::Int64(bytes)},
                        seq_);
  ++seq_;
  return t;
}

// ------------------------------------------------------------- Sensors

SensorSource::SensorSource() : SensorSource(Options()) {}

SensorSource::SensorSource(Options options)
    : options_(options),
      schema_(MakeSchema()),
      rng_(options.seed),
      temps_(options.num_sensors, 20.0) {}

SchemaPtr SensorSource::MakeSchema() {
  return Schema::Make({{"timestamp", ValueType::kInt64, ""},
                       {"sensorId", ValueType::kInt64, ""},
                       {"temperature", ValueType::kDouble, ""},
                       {"voltage", ValueType::kDouble, ""}});
}

std::optional<Tuple> SensorSource::Next() {
  while (true) {
    if (options_.num_readings >= 0 && seq_ > options_.num_readings) {
      return std::nullopt;
    }
    const int64_t ts = seq_++;
    const size_t sensor = rng_.NextBounded(options_.num_sensors);
    if (rng_.NextBool(options_.dropout)) continue;  // Disconnected sample.
    double& temp = temps_[sensor];
    temp += (rng_.NextDouble() - 0.5) * 0.8;
    const double voltage = 2.4 + rng_.NextDouble() * 0.6;
    return Tuple::Make(
        {Value::Int64(ts), Value::Int64(static_cast<int64_t>(sensor)),
         Value::Double(temp), Value::Double(voltage)},
        ts);
  }
}

// -------------------------------------------------------------- CSV file

CsvFileSource::CsvFileSource(std::vector<Tuple> rows, SchemaPtr schema)
    : schema_(std::move(schema)), rows_(std::move(rows)) {}

Result<std::unique_ptr<CsvFileSource>> CsvFileSource::Create(
    const std::string& path, SchemaPtr schema, int timestamp_field) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open CSV file: " + path);
  }
  std::vector<Tuple> rows;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::vector<Value> cells;
    std::stringstream ss(line);
    std::string cell;
    size_t col = 0;
    while (std::getline(ss, cell, ',')) {
      if (col >= schema->num_fields()) break;
      switch (schema->field(col).type) {
        case ValueType::kInt64:
          cells.push_back(Value::Int64(std::strtoll(cell.c_str(),
                                                    nullptr, 10)));
          break;
        case ValueType::kDouble:
          cells.push_back(Value::Double(std::strtod(cell.c_str(), nullptr)));
          break;
        case ValueType::kBool:
          cells.push_back(Value::Bool(cell == "true" || cell == "1"));
          break;
        default:
          cells.push_back(Value::String(cell));
          break;
      }
      ++col;
    }
    if (col != schema->num_fields()) {
      return Status::ParseError("CSV line " + std::to_string(line_no) +
                                " has " + std::to_string(col) +
                                " columns, schema needs " +
                                std::to_string(schema->num_fields()));
    }
    Timestamp ts = static_cast<Timestamp>(line_no);
    if (timestamp_field >= 0) {
      ts = cells[static_cast<size_t>(timestamp_field)].int64_value();
    }
    rows.push_back(Tuple::Make(std::move(cells), ts));
  }
  return std::unique_ptr<CsvFileSource>(
      new CsvFileSource(std::move(rows), std::move(schema)));
}

std::optional<Tuple> CsvFileSource::Next() {
  if (next_ >= rows_.size()) return std::nullopt;
  return rows_[next_++];
}

}  // namespace tcq
