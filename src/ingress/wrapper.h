#ifndef TCQ_INGRESS_WRAPPER_H_
#define TCQ_INGRESS_WRAPPER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "fjords/module.h"
#include "ingress/sources.h"

namespace tcq {

/// A streamer (§4.2.3): adapts a pull-style TupleSource into a Fjord
/// dataflow by producing into an output queue under scheduler control.
/// Stall behaviour models bursty or intermittently disconnected remote
/// sources — during a stall the module produces nothing, which is exactly
/// the situation Fjords' non-blocking queues must tolerate downstream.
class SourceModule : public FjordModule {
 public:
  struct Options {
    /// Max tuples produced per scheduling quantum (rate knob).
    size_t tuples_per_step = 64;
    /// After this many productive steps, stall... (0 = never stall).
    size_t stall_every = 0;
    /// ...for this many steps.
    size_t stall_for = 0;
  };

  SourceModule(std::string name, std::unique_ptr<TupleSource> source,
               TupleQueuePtr out);
  SourceModule(std::string name, std::unique_ptr<TupleSource> source,
               TupleQueuePtr out, Options options);

  StepResult Step(size_t max_tuples) override;

  uint64_t produced() const { return produced_; }

 private:
  std::unique_ptr<TupleSource> source_;
  TupleQueuePtr out_;
  Options options_;
  /// Tuples pulled from the source but not yet accepted by the output
  /// (non-blocking edge was full). Retried next quantum — a burst of
  /// backpressure delays tuples, it never loses them.
  std::vector<Tuple> carry_;
  uint64_t produced_ = 0;
  size_t steps_since_stall_ = 0;
  size_t stall_remaining_ = 0;
  bool exhausted_ = false;
  bool done_ = false;
};

/// What to do with an arrival whose timestamp is already below the safe
/// (released) watermark — i.e. later than the stream's declared disorder
/// bound (DESIGN.md §15).
enum class LatePolicy : uint8_t {
  kReject = 0,  ///< Refuse it (the classic hard-reject contract).
  kDrop = 1,    ///< Silently discard it, counting tcq.disorder.dropped.
  kIngestLate = 2,  ///< Ordered-insert into the archive; speculative
                    ///< queries revise, delayed queries see it only in
                    ///< windows not yet fired.
};

/// Bounded-disorder reorder buffer (§4 ingress wrappers; DESIGN.md §15):
/// holds arrivals whose timestamps may still be overtaken by earlier data,
/// and releases them in timestamp order once the raw high-water mark has
/// advanced past `ts + max_disorder`. With max_disorder == 0 every arrival
/// is released immediately (the classic in-order path, zero buffering).
///
/// Release rule: an arrival raising the raw watermark to M releases every
/// buffered tuple with timestamp <= M - max_disorder, in timestamp order
/// with ties in arrival order (stable). The release sequence is therefore
/// exactly the stable timestamp sort of the arrival sequence — the
/// foundation of the delayed-but-correct byte-identical-replay guarantee.
/// Punctuate(ts) is a heartbeat: the source asserts no future arrival has
/// timestamp <= ts, so everything buffered at or below ts flushes.
class ReorderBuffer {
 public:
  ReorderBuffer() = default;

  void set_max_disorder(Timestamp d) { max_disorder_ = d; }
  Timestamp max_disorder() const { return max_disorder_; }

  /// Accepts one stamped tuple and appends every tuple this arrival
  /// releases to `released`, in release (timestamp) order.
  void Offer(Tuple t, std::vector<Tuple>* released);

  /// Heartbeat punctuation: flushes buffered tuples with timestamp <= ts.
  void Punctuate(Timestamp ts, std::vector<Tuple>* released);

  /// Releases everything still buffered (stream close / final flush).
  void Flush(std::vector<Tuple>* released);

  /// Highest timestamp offered or punctuated so far.
  Timestamp raw_watermark() const { return raw_; }
  size_t buffered() const { return buffer_.size(); }

 private:
  void ReleaseThrough(Timestamp ts, std::vector<Tuple>* released);

  Timestamp max_disorder_ = 0;
  Timestamp raw_ = kMinTimestamp;
  std::deque<Tuple> buffer_;  ///< Timestamp-ordered, ties in arrival order.
};

class Spool;

/// The stream archive: retained history that has conceptually been
/// "spooled to disk in the background" (§1.1). Holds tuples in timestamp
/// order and serves window-driven scans — the "scanner operator driven by
/// window descriptors" of §4.2.3. Bounded by a retention span.
///
/// With AttachSpool the "conceptually" becomes literal (DESIGN.md §16):
/// only the newest `resident_limit` tuples stay in memory; older history
/// demotes to the spool's disk segments, and scans read the spool region
/// first, then the resident tail — reproducing the unsplit deque order
/// byte for byte. Without a spool every path below is exactly the legacy
/// in-memory archive (one null-pointer test on the hot append path).
class Archive {
 public:
  explicit Archive(Timestamp retention_span = kMaxTimestamp);

  /// Bounds resident memory: history beyond the newest `resident_limit`
  /// tuples demotes to `spool` under `key`. Adopts any records already
  /// spooled under the key (reopen), which must all be older than
  /// anything resident. Caller keeps `spool` alive past this archive.
  void AttachSpool(Spool* spool, std::string key, size_t resident_limit);

  bool has_spool() const { return hook_ != nullptr; }
  /// Tuples held in memory (== size() when no spool is attached).
  size_t resident_size() const { return tuples_.size(); }
  /// Live tuples demoted to the spool.
  size_t spooled_size() const { return hook_ ? hook_->spooled : 0; }

  void Append(const Tuple& t);

  /// Ordered insert for a beyond-bound straggler (LatePolicy::kIngestLate):
  /// places `t` at the upper bound of its timestamp so scans stay sorted.
  /// Appending in-order data keeps using Append (O(1) and invariant-
  /// checked).
  void InsertOrdered(const Tuple& t);

  /// Removes the newest retained tuple whose payload (timestamp + cells)
  /// matches `t` — the archive half of retraction processing. Returns
  /// false when nothing matches (the assertion was never archived, already
  /// evicted, or already cancelled).
  bool CancelMatching(const Tuple& t);

  /// All retained tuples with timestamp in [lo, hi], in order.
  TupleVector Scan(Timestamp lo, Timestamp hi) const;

  /// Applies fn to retained tuples with timestamp in [lo, hi]: the
  /// spooled (older) region first, then the resident tail — exactly the
  /// order the unsplit in-memory deque would have.
  template <typename Fn>
  void ScanApply(Timestamp lo, Timestamp hi, Fn&& fn) const {
    if (hook_) {
      if (lo < hook_->floor) lo = hook_->floor;
      if (hook_->spooled > 0 && lo <= hook_->frontier) {
        ScanSpool(lo, hi, [&](const Tuple& t) {
          fn(t);
          return true;
        });
      }
    }
    for (auto it = LowerBound(lo); it != tuples_.end(); ++it) {
      if (it->timestamp() > hi) break;
      fn(*it);
    }
  }

  /// Chunked scan for replay: appends retained tuples in [lo, hi] to
  /// `out`, stopping at the first timestamp change once `max_records`
  /// are collected (an equal-timestamp run never splits across chunks,
  /// even where it straddles the spool/resident boundary). Returns the
  /// next lo to resume from, or kMaxTimestamp when the range is done.
  Timestamp ScanChunk(Timestamp lo, Timestamp hi, size_t max_records,
                      TupleVector* out) const;

  /// Without a spool: frees history older than `ts` (legacy). With one:
  /// demotes it to disk instead — the resident set shrinks, the history
  /// stays scannable.
  void EvictBefore(Timestamp ts);

  /// Retained tuples. With a spool and a finite retention span this can
  /// exceed what scans serve: physical segment drops are coarse, so
  /// records below the logical floor linger on disk (never in results)
  /// until their whole segment ages out.
  size_t size() const { return tuples_.size() + spooled_size(); }
  Timestamp min_timestamp() const;
  Timestamp max_timestamp() const;

 private:
  /// Spool-side half of a split archive (pointers only so this header
  /// stays free of the spool's).
  struct SpoolHook {
    Spool* spool = nullptr;
    std::string key;
    size_t resident_limit = 0;
    /// Newest main-run timestamp in the spool; every spooled record has
    /// ts <= frontier, every resident tuple ts >= it.
    Timestamp frontier = kMinTimestamp;
    /// Logical retention floor (the span cutoff): scans clamp here, so
    /// segment-granular physical retention can lag exactness-free.
    Timestamp floor = kMinTimestamp;
    size_t spooled = 0;  ///< Live records in the spool.
  };

  std::deque<Tuple>::const_iterator LowerBound(Timestamp lo) const;
  /// Applies the retention span: raises the floor, pops expired resident
  /// tuples and physically drops expired spool segments.
  void TrimSpan();
  /// Demotes the oldest resident tuples until `resident_limit` holds.
  void DemoteOverflow();
  /// Scans the spool region [lo, hi] in merge order (out-of-line so the
  /// header needs no spool include).
  void ScanSpool(Timestamp lo, Timestamp hi,
                 const std::function<bool(const Tuple&)>& fn) const;

  Timestamp retention_span_;
  std::deque<Tuple> tuples_;  ///< Timestamp-ordered (enforced on Append).
  Timestamp max_ts_ = kMinTimestamp;
  std::unique_ptr<SpoolHook> hook_;
};

}  // namespace tcq

#endif  // TCQ_INGRESS_WRAPPER_H_
