#ifndef TCQ_INGRESS_WRAPPER_H_
#define TCQ_INGRESS_WRAPPER_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "fjords/module.h"
#include "ingress/sources.h"

namespace tcq {

/// A streamer (§4.2.3): adapts a pull-style TupleSource into a Fjord
/// dataflow by producing into an output queue under scheduler control.
/// Stall behaviour models bursty or intermittently disconnected remote
/// sources — during a stall the module produces nothing, which is exactly
/// the situation Fjords' non-blocking queues must tolerate downstream.
class SourceModule : public FjordModule {
 public:
  struct Options {
    /// Max tuples produced per scheduling quantum (rate knob).
    size_t tuples_per_step = 64;
    /// After this many productive steps, stall... (0 = never stall).
    size_t stall_every = 0;
    /// ...for this many steps.
    size_t stall_for = 0;
  };

  SourceModule(std::string name, std::unique_ptr<TupleSource> source,
               TupleQueuePtr out);
  SourceModule(std::string name, std::unique_ptr<TupleSource> source,
               TupleQueuePtr out, Options options);

  StepResult Step(size_t max_tuples) override;

  uint64_t produced() const { return produced_; }

 private:
  std::unique_ptr<TupleSource> source_;
  TupleQueuePtr out_;
  Options options_;
  /// Tuples pulled from the source but not yet accepted by the output
  /// (non-blocking edge was full). Retried next quantum — a burst of
  /// backpressure delays tuples, it never loses them.
  std::vector<Tuple> carry_;
  uint64_t produced_ = 0;
  size_t steps_since_stall_ = 0;
  size_t stall_remaining_ = 0;
  bool exhausted_ = false;
  bool done_ = false;
};

/// What to do with an arrival whose timestamp is already below the safe
/// (released) watermark — i.e. later than the stream's declared disorder
/// bound (DESIGN.md §15).
enum class LatePolicy : uint8_t {
  kReject = 0,  ///< Refuse it (the classic hard-reject contract).
  kDrop = 1,    ///< Silently discard it, counting tcq.disorder.dropped.
  kIngestLate = 2,  ///< Ordered-insert into the archive; speculative
                    ///< queries revise, delayed queries see it only in
                    ///< windows not yet fired.
};

/// Bounded-disorder reorder buffer (§4 ingress wrappers; DESIGN.md §15):
/// holds arrivals whose timestamps may still be overtaken by earlier data,
/// and releases them in timestamp order once the raw high-water mark has
/// advanced past `ts + max_disorder`. With max_disorder == 0 every arrival
/// is released immediately (the classic in-order path, zero buffering).
///
/// Release rule: an arrival raising the raw watermark to M releases every
/// buffered tuple with timestamp <= M - max_disorder, in timestamp order
/// with ties in arrival order (stable). The release sequence is therefore
/// exactly the stable timestamp sort of the arrival sequence — the
/// foundation of the delayed-but-correct byte-identical-replay guarantee.
/// Punctuate(ts) is a heartbeat: the source asserts no future arrival has
/// timestamp <= ts, so everything buffered at or below ts flushes.
class ReorderBuffer {
 public:
  ReorderBuffer() = default;

  void set_max_disorder(Timestamp d) { max_disorder_ = d; }
  Timestamp max_disorder() const { return max_disorder_; }

  /// Accepts one stamped tuple and appends every tuple this arrival
  /// releases to `released`, in release (timestamp) order.
  void Offer(Tuple t, std::vector<Tuple>* released);

  /// Heartbeat punctuation: flushes buffered tuples with timestamp <= ts.
  void Punctuate(Timestamp ts, std::vector<Tuple>* released);

  /// Releases everything still buffered (stream close / final flush).
  void Flush(std::vector<Tuple>* released);

  /// Highest timestamp offered or punctuated so far.
  Timestamp raw_watermark() const { return raw_; }
  size_t buffered() const { return buffer_.size(); }

 private:
  void ReleaseThrough(Timestamp ts, std::vector<Tuple>* released);

  Timestamp max_disorder_ = 0;
  Timestamp raw_ = kMinTimestamp;
  std::deque<Tuple> buffer_;  ///< Timestamp-ordered, ties in arrival order.
};

/// The stream archive: retained history that has conceptually been
/// "spooled to disk in the background" (§1.1). Holds tuples in timestamp
/// order and serves window-driven scans — the "scanner operator driven by
/// window descriptors" of §4.2.3. Bounded by a retention span.
class Archive {
 public:
  explicit Archive(Timestamp retention_span = kMaxTimestamp);

  void Append(const Tuple& t);

  /// Ordered insert for a beyond-bound straggler (LatePolicy::kIngestLate):
  /// places `t` at the upper bound of its timestamp so scans stay sorted.
  /// Appending in-order data keeps using Append (O(1) and invariant-
  /// checked).
  void InsertOrdered(const Tuple& t);

  /// Removes the newest retained tuple whose payload (timestamp + cells)
  /// matches `t` — the archive half of retraction processing. Returns
  /// false when nothing matches (the assertion was never archived, already
  /// evicted, or already cancelled).
  bool CancelMatching(const Tuple& t);

  /// All retained tuples with timestamp in [lo, hi], in order.
  TupleVector Scan(Timestamp lo, Timestamp hi) const;

  /// Applies fn to retained tuples with timestamp in [lo, hi].
  template <typename Fn>
  void ScanApply(Timestamp lo, Timestamp hi, Fn&& fn) const {
    for (auto it = LowerBound(lo); it != tuples_.end(); ++it) {
      if (it->timestamp() > hi) break;
      fn(*it);
    }
  }

  void EvictBefore(Timestamp ts);

  size_t size() const { return tuples_.size(); }
  Timestamp min_timestamp() const;
  Timestamp max_timestamp() const;

 private:
  std::deque<Tuple>::const_iterator LowerBound(Timestamp lo) const;

  Timestamp retention_span_;
  std::deque<Tuple> tuples_;  ///< Timestamp-ordered (enforced on Append).
  Timestamp max_ts_ = kMinTimestamp;
};

}  // namespace tcq

#endif  // TCQ_INGRESS_WRAPPER_H_
