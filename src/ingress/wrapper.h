#ifndef TCQ_INGRESS_WRAPPER_H_
#define TCQ_INGRESS_WRAPPER_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "fjords/module.h"
#include "ingress/sources.h"

namespace tcq {

/// A streamer (§4.2.3): adapts a pull-style TupleSource into a Fjord
/// dataflow by producing into an output queue under scheduler control.
/// Stall behaviour models bursty or intermittently disconnected remote
/// sources — during a stall the module produces nothing, which is exactly
/// the situation Fjords' non-blocking queues must tolerate downstream.
class SourceModule : public FjordModule {
 public:
  struct Options {
    /// Max tuples produced per scheduling quantum (rate knob).
    size_t tuples_per_step = 64;
    /// After this many productive steps, stall... (0 = never stall).
    size_t stall_every = 0;
    /// ...for this many steps.
    size_t stall_for = 0;
  };

  SourceModule(std::string name, std::unique_ptr<TupleSource> source,
               TupleQueuePtr out);
  SourceModule(std::string name, std::unique_ptr<TupleSource> source,
               TupleQueuePtr out, Options options);

  StepResult Step(size_t max_tuples) override;

  uint64_t produced() const { return produced_; }

 private:
  std::unique_ptr<TupleSource> source_;
  TupleQueuePtr out_;
  Options options_;
  /// Tuples pulled from the source but not yet accepted by the output
  /// (non-blocking edge was full). Retried next quantum — a burst of
  /// backpressure delays tuples, it never loses them.
  std::vector<Tuple> carry_;
  uint64_t produced_ = 0;
  size_t steps_since_stall_ = 0;
  size_t stall_remaining_ = 0;
  bool exhausted_ = false;
  bool done_ = false;
};

/// The stream archive: retained history that has conceptually been
/// "spooled to disk in the background" (§1.1). Holds tuples in timestamp
/// order and serves window-driven scans — the "scanner operator driven by
/// window descriptors" of §4.2.3. Bounded by a retention span.
class Archive {
 public:
  explicit Archive(Timestamp retention_span = kMaxTimestamp);

  void Append(const Tuple& t);

  /// All retained tuples with timestamp in [lo, hi], in order.
  TupleVector Scan(Timestamp lo, Timestamp hi) const;

  /// Applies fn to retained tuples with timestamp in [lo, hi].
  template <typename Fn>
  void ScanApply(Timestamp lo, Timestamp hi, Fn&& fn) const {
    for (auto it = LowerBound(lo); it != tuples_.end(); ++it) {
      if (it->timestamp() > hi) break;
      fn(*it);
    }
  }

  void EvictBefore(Timestamp ts);

  size_t size() const { return tuples_.size(); }
  Timestamp min_timestamp() const;
  Timestamp max_timestamp() const;

 private:
  std::deque<Tuple>::const_iterator LowerBound(Timestamp lo) const;

  Timestamp retention_span_;
  std::deque<Tuple> tuples_;  ///< Timestamp-ordered (enforced on Append).
  Timestamp max_ts_ = kMinTimestamp;
};

}  // namespace tcq

#endif  // TCQ_INGRESS_WRAPPER_H_
