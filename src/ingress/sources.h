#ifndef TCQ_INGRESS_SOURCES_H_
#define TCQ_INGRESS_SOURCES_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "tuple/schema.h"
#include "tuple/tuple.h"

namespace tcq {

/// A pull-style data producer — the engine-facing face of an ingress
/// wrapper (§4.2.3). The synthetic generators below substitute for the
/// paper's remote web sources, screen scrapers and sensor networks: the
/// engine sees the identical API while the workload's rate, skew, and
/// drift stay controllable and reproducible (seeded).
class TupleSource {
 public:
  virtual ~TupleSource() = default;
  virtual const SchemaPtr& schema() const = 0;
  /// Produces the next tuple, or nullopt when the source is exhausted.
  virtual std::optional<Tuple> Next() = 0;
};

/// Daily closing prices — the paper's running example stream:
///   ClosingStockPrices(timestamp, stockSymbol, closingPrice)
/// One entry per trading day per symbol; logical timestamps start at 1 and
/// advance per day. Prices follow a per-symbol random walk.
class StockTickerSource : public TupleSource {
 public:
  struct Options {
    size_t num_symbols = 16;
    int64_t num_days = 1000;  ///< -1 = unbounded.
    double start_price = 50.0;
    double daily_volatility = 1.0;
    uint64_t seed = 2003;
  };

  StockTickerSource();
  explicit StockTickerSource(Options options);

  static SchemaPtr MakeSchema();
  /// Symbol for index i: "S000", "S001", ... ("MSFT" is symbol 0's alias).
  static std::string SymbolName(size_t i);

  const SchemaPtr& schema() const override { return schema_; }
  std::optional<Tuple> Next() override;

 private:
  Options options_;
  SchemaPtr schema_;
  Rng rng_;
  int64_t day_ = 1;
  size_t next_symbol_ = 0;
  std::vector<double> prices_;
};

/// Network-monitor packets with Zipf-skewed endpoints:
///   Packets(timestamp, srcAddr, dstAddr, dstPort, bytes)
class PacketSource : public TupleSource {
 public:
  struct Options {
    size_t num_hosts = 256;
    size_t num_ports = 64;
    double host_skew = 1.1;  ///< Zipf skew of address popularity.
    int64_t num_packets = -1;
    uint64_t seed = 4096;
  };

  PacketSource();
  explicit PacketSource(Options options);

  static SchemaPtr MakeSchema();

  const SchemaPtr& schema() const override { return schema_; }
  std::optional<Tuple> Next() override;

 private:
  Options options_;
  SchemaPtr schema_;
  Rng rng_;
  int64_t seq_ = 1;
};

/// Sensor readings with value drift and intermittent dropouts:
///   Sensors(timestamp, sensorId, temperature, voltage)
class SensorSource : public TupleSource {
 public:
  struct Options {
    size_t num_sensors = 32;
    int64_t num_readings = -1;
    /// Probability a sensor silently skips its reading (disconnection).
    double dropout = 0.05;
    uint64_t seed = 77;
  };

  SensorSource();
  explicit SensorSource(Options options);

  static SchemaPtr MakeSchema();

  const SchemaPtr& schema() const override { return schema_; }
  std::optional<Tuple> Next() override;

 private:
  Options options_;
  SchemaPtr schema_;
  Rng rng_;
  int64_t seq_ = 1;
  std::vector<double> temps_;
};

/// Replays a CSV file (no quoting; ',' separator) against a schema.
/// Column i parses per schema field i; a column named per
/// `timestamp_field` also stamps the tuple timestamp.
class CsvFileSource : public TupleSource {
 public:
  /// Fails (returned via Create) if the file cannot be read.
  static Result<std::unique_ptr<CsvFileSource>> Create(
      const std::string& path, SchemaPtr schema, int timestamp_field = -1);

  const SchemaPtr& schema() const override { return schema_; }
  std::optional<Tuple> Next() override;

 private:
  CsvFileSource(std::vector<Tuple> rows, SchemaPtr schema);
  SchemaPtr schema_;
  std::vector<Tuple> rows_;
  size_t next_ = 0;
};

}  // namespace tcq

#endif  // TCQ_INGRESS_SOURCES_H_
