#include "ingress/wrapper.h"

#include <algorithm>

#include "common/logging.h"
#include "spool/spool.h"

namespace tcq {

SourceModule::SourceModule(std::string name,
                           std::unique_ptr<TupleSource> source,
                           TupleQueuePtr out)
    : SourceModule(std::move(name), std::move(source), std::move(out),
                   Options()) {}

SourceModule::SourceModule(std::string name,
                           std::unique_ptr<TupleSource> source,
                           TupleQueuePtr out, Options options)
    : FjordModule(std::move(name)),
      source_(std::move(source)),
      out_(std::move(out)),
      options_(options) {
  TCQ_CHECK(source_ != nullptr && out_ != nullptr);
}

FjordModule::StepResult SourceModule::Step(size_t max_tuples) {
  if (done_) return StepResult::kDone;
  if (stall_remaining_ > 0) {
    --stall_remaining_;
    return StepResult::kIdle;  // Mid-stall: remote source is silent.
  }
  const size_t budget = std::min(max_tuples, options_.tuples_per_step);
  // Pull fresh tuples behind any carried-over backlog, then offer the
  // whole batch to the output edge in one EnqueueBatch (one lock, one
  // notification). A rejected suffix (full non-blocking edge) stays in
  // carry_ and is retried next quantum instead of being dropped.
  while (!exhausted_ && carry_.size() < budget) {
    auto t = source_->Next();
    if (!t.has_value()) {
      exhausted_ = true;
      break;
    }
    carry_.push_back(std::move(*t));
  }
  size_t produced = 0;
  if (!carry_.empty()) {
    produced = out_->EnqueueBatch(std::move(carry_));
    produced_ += produced;
    if (!carry_.empty() && out_->closed()) {
      carry_.clear();  // Downstream gave up; the backlog has no taker.
    }
  }
  if (exhausted_ && carry_.empty()) {
    out_->Close();
    done_ = true;
    return produced > 0 ? StepResult::kDidWork : StepResult::kDone;
  }
  if (options_.stall_every > 0) {
    if (++steps_since_stall_ >= options_.stall_every) {
      steps_since_stall_ = 0;
      stall_remaining_ = options_.stall_for;
    }
  }
  return produced > 0 ? StepResult::kDidWork : StepResult::kIdle;
}

void ReorderBuffer::Offer(Tuple t, std::vector<Tuple>* released) {
  const Timestamp ts = t.timestamp();
  if (ts > raw_) raw_ = ts;
  if (max_disorder_ == 0 && buffer_.empty()) {
    // Classic in-order path: nothing can overtake this tuple.
    released->push_back(std::move(t));
    return;
  }
  // Stable ordered insert: equal timestamps keep arrival order, so the
  // release sequence is the stable timestamp sort of the arrivals.
  if (buffer_.empty() || buffer_.back().timestamp() <= ts) {
    buffer_.push_back(std::move(t));
  } else {
    const auto pos = std::upper_bound(
        buffer_.begin(), buffer_.end(), ts,
        [](Timestamp v, const Tuple& u) { return v < u.timestamp(); });
    buffer_.insert(pos, std::move(t));
  }
  // Release everything the bound proves safe. The guard avoids signed
  // underflow when raw_ is still near kMinTimestamp.
  if (raw_ >= kMinTimestamp + max_disorder_) {
    ReleaseThrough(raw_ - max_disorder_, released);
  }
}

void ReorderBuffer::Punctuate(Timestamp ts, std::vector<Tuple>* released) {
  if (ts > raw_) raw_ = ts;
  ReleaseThrough(ts, released);
}

void ReorderBuffer::Flush(std::vector<Tuple>* released) {
  while (!buffer_.empty()) {
    released->push_back(std::move(buffer_.front()));
    buffer_.pop_front();
  }
}

void ReorderBuffer::ReleaseThrough(Timestamp ts,
                                   std::vector<Tuple>* released) {
  while (!buffer_.empty() && buffer_.front().timestamp() <= ts) {
    released->push_back(std::move(buffer_.front()));
    buffer_.pop_front();
  }
}

Archive::Archive(Timestamp retention_span)
    : retention_span_(retention_span) {
  TCQ_CHECK(retention_span_ > 0);
}

void Archive::AttachSpool(Spool* spool, std::string key,
                          size_t resident_limit) {
  TCQ_CHECK(spool != nullptr);
  TCQ_CHECK(resident_limit > 0) << "archive needs a resident tail";
  TCQ_CHECK(!hook_) << "spool already attached";
  hook_ = std::make_unique<SpoolHook>();
  hook_->spool = spool;
  hook_->key = std::move(key);
  hook_->resident_limit = resident_limit;
  // Adopt history already on disk (server restart): it is by definition
  // older than anything this process will append.
  hook_->spooled = spool->records(hook_->key);
  hook_->frontier = spool->main_frontier(hook_->key);
  TCQ_CHECK(tuples_.empty() ||
            tuples_.front().timestamp() >= hook_->frontier)
      << "spooled history must predate resident tuples";
  DemoteOverflow();
}

void Archive::TrimSpan() {
  if (retention_span_ == kMaxTimestamp) return;
  const Timestamp cutoff = max_ts_ - retention_span_ + 1;
  while (!tuples_.empty() && tuples_.front().timestamp() < cutoff) {
    tuples_.pop_front();
  }
  if (hook_ && cutoff > hook_->floor) {
    // The floor gives exact logical retention; physical segment drops
    // are free to lag at whole-segment granularity.
    hook_->floor = cutoff;
    if (hook_->spooled > 0) {
      TCQ_CHECK(hook_->spool->EvictBefore(hook_->key, cutoff).ok());
      hook_->spooled = hook_->spool->records(hook_->key);
    }
  }
}

void Archive::DemoteOverflow() {
  while (tuples_.size() > hook_->resident_limit) {
    const Tuple& victim = tuples_.front();
    TCQ_CHECK(hook_->spool->Append(hook_->key, victim).ok())
        << "spool demotion failed";
    hook_->frontier = std::max(hook_->frontier, victim.timestamp());
    ++hook_->spooled;
    tuples_.pop_front();
  }
}

void Archive::Append(const Tuple& t) {
  TCQ_CHECK(tuples_.empty() || t.timestamp() >= tuples_.back().timestamp())
      << "archive requires timestamp-ordered appends";
  tuples_.push_back(t);
  if (t.timestamp() > max_ts_) max_ts_ = t.timestamp();
  if (retention_span_ != kMaxTimestamp) TrimSpan();
  if (hook_) DemoteOverflow();
}

std::deque<Tuple>::const_iterator Archive::LowerBound(Timestamp lo) const {
  return std::lower_bound(
      tuples_.begin(), tuples_.end(), lo,
      [](const Tuple& t, Timestamp ts) { return t.timestamp() < ts; });
}

TupleVector Archive::Scan(Timestamp lo, Timestamp hi) const {
  TupleVector out;
  ScanApply(lo, hi, [&](const Tuple& t) { out.push_back(t); });
  return out;
}

void Archive::InsertOrdered(const Tuple& t) {
  if (hook_) {
    if (t.timestamp() < hook_->floor) return;  // Expired straggler.
    // A straggler older than every resident tuple belongs in the spool's
    // late run, which stitches it to the exact upper-bound position the
    // unsplit deque would have used (every tuple with ts <= its own is
    // already spooled, every resident one is strictly newer).
    if (hook_->spooled > 0 &&
        (tuples_.empty() || t.timestamp() < tuples_.front().timestamp())) {
      TCQ_CHECK(hook_->spool->Append(hook_->key, t).ok())
          << "spool late insert failed";
      hook_->frontier = std::max(hook_->frontier, t.timestamp());
      ++hook_->spooled;
      return;
    }
  }
  if (tuples_.empty() || t.timestamp() >= tuples_.back().timestamp()) {
    Append(t);
    return;
  }
  const auto pos = std::upper_bound(
      tuples_.begin(), tuples_.end(), t.timestamp(),
      [](Timestamp ts, const Tuple& u) { return ts < u.timestamp(); });
  tuples_.insert(pos, t);
  // max_ts_ unchanged (the straggler is older by definition); retention
  // may still discard it immediately when it falls outside the span.
  if (retention_span_ != kMaxTimestamp) TrimSpan();
  if (hook_) DemoteOverflow();
}

bool Archive::CancelMatching(const Tuple& t) {
  // Scan the timestamp-equal range newest-first so a duplicate payload
  // cancels its most recent assertion.
  auto lo = LowerBound(t.timestamp());
  auto hi = std::upper_bound(
      tuples_.begin(), tuples_.end(), t.timestamp(),
      [](Timestamp ts, const Tuple& u) { return ts < u.timestamp(); });
  for (auto it = hi; it != lo;) {
    --it;
    if (it->PayloadEquals(t)) {
      tuples_.erase(it);
      return true;
    }
  }
  // Resident misses fall through to demoted history: every spooled record
  // is older than every resident one, so checking resident first keeps
  // the newest-match contract.
  if (hook_ && hook_->spooled > 0 && t.timestamp() <= hook_->frontier &&
      t.timestamp() >= hook_->floor) {
    auto cancelled = hook_->spool->Cancel(hook_->key, t);
    TCQ_CHECK(cancelled.ok()) << "spool cancel failed: "
                              << cancelled.status();
    if (*cancelled) {
      --hook_->spooled;
      return true;
    }
  }
  return false;
}

void Archive::EvictBefore(Timestamp ts) {
  if (hook_) {
    // Demote rather than free: the tuples leave RAM but stay scannable.
    while (!tuples_.empty() && tuples_.front().timestamp() < ts) {
      const Tuple& victim = tuples_.front();
      TCQ_CHECK(hook_->spool->Append(hook_->key, victim).ok())
          << "spool demotion failed";
      hook_->frontier = std::max(hook_->frontier, victim.timestamp());
      ++hook_->spooled;
      tuples_.pop_front();
    }
    return;
  }
  while (!tuples_.empty() && tuples_.front().timestamp() < ts) {
    tuples_.pop_front();
  }
}

void Archive::ScanSpool(Timestamp lo, Timestamp hi,
                        const std::function<bool(const Tuple&)>& fn) const {
  TCQ_CHECK(hook_->spool->Scan(hook_->key, lo, hi, fn).ok())
      << "spool scan failed";
}

Timestamp Archive::ScanChunk(Timestamp lo, Timestamp hi, size_t max_records,
                             TupleVector* out) const {
  if (hook_) {
    if (lo < hook_->floor) lo = hook_->floor;
    if (hook_->spooled > 0 && lo <= hook_->frontier) {
      auto next = hook_->spool->ScanChunk(hook_->key, lo, hi, max_records,
                                          out);
      TCQ_CHECK(next.ok()) << "spool scan failed: " << next.status();
      // More spool to go: stop here; the resident region waits its turn.
      if (*next != kMaxTimestamp) return *next;
      // Spool region exhausted: continue into the resident tail below,
      // same chunk — an equal-timestamp run straddling the boundary must
      // not split.
    }
  }
  for (auto it = LowerBound(lo); it != tuples_.end(); ++it) {
    if (it->timestamp() > hi) break;
    if (out->size() >= max_records && !out->empty() &&
        it->timestamp() != out->back().timestamp()) {
      return it->timestamp();
    }
    out->push_back(*it);
  }
  return kMaxTimestamp;
}

Timestamp Archive::min_timestamp() const {
  if (hook_ && hook_->spooled > 0) {
    return std::max(hook_->floor,
                    hook_->spool->min_timestamp(hook_->key));
  }
  return tuples_.empty() ? kMaxTimestamp : tuples_.front().timestamp();
}

Timestamp Archive::max_timestamp() const {
  if (!tuples_.empty()) return tuples_.back().timestamp();
  return (hook_ && hook_->spooled > 0) ? hook_->frontier : kMinTimestamp;
}

}  // namespace tcq
