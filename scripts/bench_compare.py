#!/usr/bin/env python3
"""Compares two BENCH_<sha>.json files produced by scripts/bench.sh.

Matches benchmarks by (binary, name), reports per-benchmark deltas in
cpu_time (and tuples_per_sec where present), and exits non-zero when any
benchmark regressed beyond the threshold — so both local runs and CI can
gate on it.

Usage:
  scripts/bench_compare.py BENCH_old.json BENCH_new.json
  scripts/bench_compare.py --threshold 10 old.json new.json
  scripts/bench_compare.py --metric tuples_per_sec old.json new.json

Exit codes: 0 = within threshold, 1 = regression, 2 = usage/parse error.

Caveat: numbers are only comparable when both files come from the same
machine under similar load (see scripts/bench.sh, which CPU-pins runs).
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    out = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        key = (b.get("binary", ""), b["name"])
        out[key] = b
    if not out:
        print(f"error: no benchmarks in {path}", file=sys.stderr)
        sys.exit(2)
    return out


def main():
    ap = argparse.ArgumentParser(
        description="Diff two bench.sh result files and gate on regressions.")
    ap.add_argument("old", help="baseline BENCH_<sha>.json")
    ap.add_argument("new", help="candidate BENCH_<sha>.json")
    ap.add_argument("--threshold", type=float, default=5.0,
                    help="fail when cpu_time regresses more than this "
                         "percentage (default: %(default)s)")
    ap.add_argument("--metric", default="cpu_time",
                    choices=["cpu_time", "real_time", "tuples_per_sec"],
                    help="metric to gate on (default: %(default)s)")
    args = ap.parse_args()

    old = load(args.old)
    new = load(args.new)
    # For throughput metrics higher is better; for times lower is better.
    higher_is_better = args.metric == "tuples_per_sec"

    rows = []
    regressions = []
    for key in sorted(old.keys() | new.keys()):
        binary, name = key
        label = f"{binary}:{name}" if binary else name
        if key not in old:
            rows.append((label, None, new[key].get(args.metric), None,
                         "new benchmark"))
            continue
        if key not in new:
            rows.append((label, old[key].get(args.metric), None, None,
                         "removed"))
            continue
        a = old[key].get(args.metric)
        b = new[key].get(args.metric)
        if a is None or b is None or a == 0:
            rows.append((label, a, b, None, "no data"))
            continue
        delta_pct = (b - a) / a * 100.0
        regressed = (delta_pct < -args.threshold if higher_is_better
                     else delta_pct > args.threshold)
        note = "REGRESSION" if regressed else ""
        if regressed:
            regressions.append(label)
        rows.append((label, a, b, delta_pct, note))

    width = max(len(r[0]) for r in rows)
    unit = "" if higher_is_better else " (lower is better)"
    print(f"metric: {args.metric}{unit}, threshold: {args.threshold}%")
    for label, a, b, delta, note in rows:
        old_s = f"{a:12.3f}" if a is not None else f"{'-':>12}"
        new_s = f"{b:12.3f}" if b is not None else f"{'-':>12}"
        delta_s = f"{delta:+8.2f}%" if delta is not None else f"{'-':>9}"
        print(f"  {label:<{width}}  {old_s}  {new_s}  {delta_s}  {note}")

    # New benchmarks have no baseline to gate against: call them out so a
    # "clean" comparison isn't mistaken for full coverage.
    new_count = sum(1 for r in rows if r[4] == "new benchmark")
    if new_count:
        print(f"\nnote: {new_count} new benchmark(s) with no baseline to "
              f"compare against")

    if regressions:
        print(f"\nFAIL: {len(regressions)} benchmark(s) regressed beyond "
              f"{args.threshold}%:", file=sys.stderr)
        for label in regressions:
            print(f"  {label}", file=sys.stderr)
        sys.exit(1)
    print("\nOK: no regressions beyond threshold")


if __name__ == "__main__":
    main()
