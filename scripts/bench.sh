#!/usr/bin/env bash
# Runs the tracked benchmark subset and records the results to
# BENCH_<git-sha>.json at the repo root, so performance baselines travel
# with the history and regressions are a `diff` away.
#
# Usage:
#   scripts/bench.sh              # full run (CPU-pinned when possible)
#   scripts/bench.sh --quick      # CI smoke: --benchmark_min_time=0.05s
#   OUT=my.json scripts/bench.sh  # custom output path
#   BENCHES="bench_executor" scripts/bench.sh   # custom binary subset
#
# The tracked subset covers the batch dataflow hot path: the executor
# ingest benchmarks (Server::PushBatch -> CACQ eddy), including the
# sharded sweep, the zipfian-skew rebalance on/off pair
# (BM_ShardedSkewedThroughput), the process-pair HA tax and recovery
# latency (BM_ShardedFailover), the Fjord queue benchmarks
# (EnqueueBatch/DequeueUpTo), and the many-query scale sweep
# (BM_ManyQueries* at 10..10k CQs, inline and sharded), and the
# disorder-tolerant ingress sweep (bench_disorder: reorder bound ×
# disorder rate, delayed vs speculative, kIngestLate backfill). Add
# binaries via $BENCHES.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
BUILD_DIR="${BUILD_DIR:-build}"
SHA="$(git rev-parse --short HEAD)"
OUT="${OUT:-BENCH_${SHA}.json}"
BENCHES="${BENCHES:-bench_executor bench_fjords_queues bench_many_queries bench_disorder bench_spool}"

EXTRA_ARGS=()
if [[ "${1:-}" == "--quick" ]]; then
  # Plain double spelling: accepted by every google-benchmark version
  # (newer ones also take a "0.05s" suffix form).
  EXTRA_ARGS+=(--benchmark_min_time=0.05)
  shift
fi
FILTER="${1:-}"
if [[ -n "$FILTER" ]]; then
  EXTRA_ARGS+=("--benchmark_filter=$FILTER")
fi

# Pin to one CPU when the tool is available: steadier numbers. Binaries
# matching $MULTICORE_RE spawn worker threads (the sharded exchange
# sweep) and must NOT be pinned — a one-CPU mask would serialize the
# shards and understate every multi-shard configuration.
PIN=()
if command -v taskset >/dev/null 2>&1; then
  PIN=(taskset -c 0)
fi
MULTICORE_RE="${MULTICORE_RE:-^(bench_executor|bench_many_queries)$}"

cmake -B "$BUILD_DIR" -S . >/dev/null
# shellcheck disable=SC2086
cmake --build "$BUILD_DIR" -j "$JOBS" --target $BENCHES >/dev/null

TMPDIR_BENCH="$(mktemp -d)"
trap 'rm -rf "$TMPDIR_BENCH"' EXIT
PARTS=()
for b in $BENCHES; do
  RUN_PIN=("${PIN[@]}")
  if [[ "$b" =~ $MULTICORE_RE ]]; then
    RUN_PIN=()
  fi
  echo "==> $b ${EXTRA_ARGS[*]:-}" >&2
  "${RUN_PIN[@]}" "$BUILD_DIR/bench/$b" --benchmark_format=json \
      "${EXTRA_ARGS[@]}" >"$TMPDIR_BENCH/$b.json"
  PARTS+=("$TMPDIR_BENCH/$b.json")
done

python3 - "$OUT" "${PARTS[@]}" <<'PY'
import json
import sys

out_path, *parts = sys.argv[1:]
merged = {"context": None, "benchmarks": []}
for path in parts:
    with open(path) as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError:
            # e.g. --benchmark_filter matched nothing in this binary.
            print(f"warning: no benchmark output from {path}",
                  file=sys.stderr)
            continue
    if merged["context"] is None:
        ctx = doc.get("context", {})
        ctx.pop("load_avg", None)  # Noise; meaningless across runs.
        merged["context"] = ctx
    binary = path.rsplit("/", 1)[-1].removesuffix(".json")
    for bench in doc.get("benchmarks", []):
        bench["binary"] = binary
        merged["benchmarks"].append(bench)
with open(out_path, "w") as f:
    json.dump(merged, f, indent=1, sort_keys=True)
    f.write("\n")
PY

echo "==> wrote $OUT ($(python3 -c "
import json
print(len(json.load(open('$OUT'))['benchmarks']))") benchmarks)"
