#!/usr/bin/env bash
# Measures the cost of the always-on telemetry layer: runs the tracked
# hot-path benchmark (BM_PushThroughputFilters/64 by default) once in a
# default build and once with -DTCQ_DISABLE_METRICS=ON (registry mirrors
# and trace hooks compiled out), and fails if the instrumented build is
# more than MAX_OVERHEAD_PCT slower.
#
# Usage:
#   scripts/telemetry_overhead.sh            # full run
#   scripts/telemetry_overhead.sh --quick    # CI smoke (short min_time)
#   MAX_OVERHEAD_PCT=10 scripts/telemetry_overhead.sh
#   BENCH_FILTER='BM_PushThroughputFilters/64$' scripts/telemetry_overhead.sh
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
MAX_OVERHEAD_PCT="${MAX_OVERHEAD_PCT:-5}"
BENCH_FILTER="${BENCH_FILTER:-BM_PushThroughputFilters/64\$}"
BENCH_BIN="bench_executor"

EXTRA_ARGS=(--benchmark_filter="$BENCH_FILTER")
ROUNDS="${ROUNDS:-5}"
if [[ "${1:-}" == "--quick" ]]; then
  EXTRA_ARGS+=(--benchmark_min_time=0.05)
fi

PIN=()
if command -v taskset >/dev/null 2>&1; then
  PIN=(taskset -c 0)
fi

build_config() {  # build_config <build_dir> <extra cmake flags...>
  local dir="$1"; shift
  cmake -B "$dir" -S . "$@" >/dev/null
  cmake --build "$dir" -j "$JOBS" --target "$BENCH_BIN" >/dev/null
}

echo "==> building: telemetry enabled (default) + compiled out" >&2
build_config build-telemetry-on
build_config build-telemetry-off -DTCQ_DISABLE_METRICS=ON

# Alternate the two binaries for ROUNDS rounds and gate on the per-config
# MINIMUM: frequency/thermal drift and scheduler noise hit both configs
# alike, and the min is the least-perturbed observation of each.
TMPDIR_OH="$(mktemp -d)"
trap 'rm -rf "$TMPDIR_OH"' EXIT
for ((i = 0; i < ROUNDS; ++i)); do
  echo "==> round $((i + 1))/$ROUNDS" >&2
  "${PIN[@]}" build-telemetry-on/bench/"$BENCH_BIN" \
      --benchmark_format=json "${EXTRA_ARGS[@]}" >"$TMPDIR_OH/on.$i.json"
  "${PIN[@]}" build-telemetry-off/bench/"$BENCH_BIN" \
      --benchmark_format=json "${EXTRA_ARGS[@]}" >"$TMPDIR_OH/off.$i.json"
done

python3 - "$MAX_OVERHEAD_PCT" "$ROUNDS" "$TMPDIR_OH" <<'PY'
import json
import sys

max_pct, rounds, tmpdir = float(sys.argv[1]), int(sys.argv[2]), sys.argv[3]

def best_cpu(config):
    best, name = None, None
    for i in range(rounds):
        with open(f"{tmpdir}/{config}.{i}.json") as f:
            doc = json.load(f)
        for b in doc.get("benchmarks", []):
            if b.get("run_type") == "aggregate":
                continue
            if best is None or b["cpu_time"] < best:
                best, name = b["cpu_time"], b["name"]
    if best is None:
        raise SystemExit(f"error: no benchmark output for config {config}")
    return best, name

enabled, name = best_cpu("on")
disabled, _ = best_cpu("off")
overhead = (enabled - disabled) / disabled * 100.0
print(f"{name}: enabled={enabled:.3f}us compiled-out={disabled:.3f}us "
      f"overhead={overhead:+.2f}% (limit {max_pct}%, "
      f"min over {rounds} alternating rounds)")
if overhead > max_pct:
    print(f"FAIL: telemetry overhead {overhead:.2f}% exceeds {max_pct}%",
          file=sys.stderr)
    sys.exit(1)
print("OK: telemetry overhead within limit")
PY
