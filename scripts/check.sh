#!/usr/bin/env bash
# Full verification: tier-1 (fast unit suite) plus the fault-injection /
# concurrency stress suite under ThreadSanitizer and ASan+UBSan.
#
# Usage:
#   scripts/check.sh            # tier-1 + one stress pass per sanitizer
#   STRESS_REPEAT=30 scripts/check.sh   # acceptance-grade soak
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
STRESS_REPEAT="${STRESS_REPEAT:-1}"

echo "==> tier-1: plain build + full ctest"
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS" >/dev/null
(cd build && ctest --output-on-failure -j "$JOBS")

for SAN in thread address; do
  DIR="build-${SAN}san"
  echo "==> sanitizer=${SAN}: stress suite x${STRESS_REPEAT} (${DIR})"
  cmake -B "$DIR" -S . -DTCQ_SANITIZE="$SAN" >/dev/null
  cmake --build "$DIR" -j "$JOBS" >/dev/null
  (cd "$DIR" && ctest -L stress --output-on-failure \
      --repeat until-fail:"$STRESS_REPEAT")
done

echo "==> all checks passed"
